#include "analysis/safety.h"

#include <algorithm>

#include "graph/query_graph.h"
#include "rewrite/csl.h"
#include "rewrite/strongly_linear.h"

namespace mcm::analysis {

using dl::DiagCode;

std::string_view VerdictToString(Verdict v) {
  switch (v) {
    case Verdict::kSafe: return "safe";
    case Verdict::kUnsafe: return "UNSAFE";
    case Verdict::kUnknown: return "unknown";
  }
  return "?";
}

std::string_view QueryFormToString(QueryForm f) {
  switch (f) {
    case QueryForm::kNotStronglyLinear: return "not strongly linear";
    case QueryForm::kCanonical: return "canonical strongly linear";
    case QueryForm::kComposed: return "composed strongly linear";
    case QueryForm::kReverseBound: return "reverse-bound strongly linear";
  }
  return "?";
}

std::vector<std::string> CountingSafetyReport::UnsafeMethods() const {
  std::vector<std::string> out;
  for (const MethodVerdict& v : verdicts) {
    if (v.verdict == Verdict::kUnsafe) out.push_back(v.method);
  }
  return out;
}

Verdict CountingSafetyReport::VerdictFor(const std::string& method) const {
  for (const MethodVerdict& v : verdicts) {
    if (v.method == method) return v.verdict;
  }
  return Verdict::kUnknown;
}

std::string CountingSafetyReport::ToString() const {
  std::string out = "counting-safety verdicts (" +
                    std::string(QueryFormToString(form));
  if (analyzed) {
    out += "; magic graph over '" + l_predicate +
           "': " + graph::GraphClassToString(graph_class) + ", " +
           std::to_string(magic_nodes) + " node(s) / " +
           std::to_string(magic_arcs) + " arc(s), " +
           std::to_string(recurring_nodes) + " recurring";
  } else {
    out += "; magic graph not analyzed";
  }
  out += "):\n";
  size_t width = 0;
  for (const MethodVerdict& v : verdicts) {
    width = std::max(width, v.method.size());
  }
  for (const MethodVerdict& v : verdicts) {
    out += "  " + v.method + std::string(width - v.method.size() + 2, ' ');
    std::string verdict(VerdictToString(v.verdict));
    out += verdict + std::string(verdict.size() < 8 ? 8 - verdict.size() : 1,
                                 ' ');
    out += v.reason + "\n";
  }
  return out;
}

namespace {

/// The recursive rules of the goal predicate (for warning spans).
dl::Span RecursiveRuleSpan(const dl::Program& program,
                           const std::string& goal_pred) {
  for (const dl::Rule& r : program.rules) {
    if (r.head.predicate != goal_pred) continue;
    for (const dl::Literal& l : r.body) {
      if (l.kind == dl::Literal::Kind::kAtom &&
          l.atom.predicate == goal_pred) {
        return r.span();
      }
    }
  }
  return dl::Span{};
}

/// Split into goal-predicate rules and support rules; mirrors the planner.
/// Returns false when a support rule depends on the goal predicate (the
/// program is then outside the strongly linear class).
bool SplitByGoal(const dl::Program& program, const std::string& goal_pred,
                 dl::Program* goal_part, dl::Program* support) {
  for (const dl::Rule& r : program.rules) {
    if (r.head.predicate == goal_pred) {
      goal_part->rules.push_back(r);
      continue;
    }
    for (const dl::Literal& lit : r.body) {
      if (lit.kind == dl::Literal::Kind::kAtom &&
          lit.atom.predicate == goal_pred) {
        return false;
      }
    }
    support->rules.push_back(r);
  }
  goal_part->queries = program.queries;
  return true;
}

}  // namespace

bool ResolveGroundTerm(const dl::Term& t, const SymbolTable& symbols,
                       Value* out) {
  if (t.kind == dl::Term::Kind::kInt) {
    *out = t.value;
    return true;
  }
  if (t.kind == dl::Term::Kind::kSymbol) {
    Value v = symbols.Find(t.name);
    if (v < 0) return false;
    *out = v;
    return true;
  }
  return false;
}

void MaterializeGroundFacts(const dl::Program& program, const std::string& pred,
                            Database* scratch) {
  for (const dl::Rule& r : program.rules) {
    if (!r.IsFact() || r.head.predicate != pred) continue;
    if (r.head.arity() > kMaxTupleArity) continue;
    Relation* rel = scratch->GetOrCreateRelation(pred, r.head.arity());
    if (rel->arity() != r.head.arity()) continue;
    Tuple t(r.head.arity());
    bool ground = true;
    for (uint32_t i = 0; i < r.head.arity(); ++i) {
      const dl::Term& arg = r.head.args[i];
      if (arg.kind == dl::Term::Kind::kInt) {
        t[i] = arg.value;
      } else if (arg.kind == dl::Term::Kind::kSymbol) {
        t[i] = scratch->symbols().Intern(arg.name);
      } else {
        ground = false;
        break;
      }
    }
    if (ground) rel->Insert(t);
  }
}

namespace {

void AddMcVerdicts(CountingSafetyReport* report) {
  struct VariantRow {
    const char* name;
    const char* regular;
    const char* acyclic;
    const char* cyclic;
  };
  static constexpr VariantRow kRows[] = {
      {"basic",
       "regular graph: counting covers the whole magic set",
       "non-regular graph detected: falls back to RM = MS (pure magic)",
       "non-regular graph detected: falls back to RM = MS (pure magic)"},
      {"single",
       "regular graph: i_x = +inf, counting covers the whole magic set",
       "counting restricted to indices below i_x; rest to RM",
       "counting restricted to indices below i_x; recurring nodes to RM"},
      {"multiple",
       "regular graph: every node single, counting covers everything",
       "counting keeps single nodes; multiple nodes to RM",
       "counting keeps single nodes; recurring/multiple nodes to RM"},
      {"recurring",
       "regular graph: counting covers everything",
       "counting keeps all finite index sets (single + multiple nodes)",
       "recurring nodes to RM; counting keeps the finite index sets"},
  };
  for (const VariantRow& row : kRows) {
    std::string reason;
    if (!report->analyzed) {
      reason = "safe on every instance (Proposition 3: Step 1 routes "
               "divergent nodes to RM)";
    } else {
      switch (report->graph_class) {
        case graph::GraphClass::kRegular: reason = row.regular; break;
        case graph::GraphClass::kAcyclicNonRegular:
          reason = row.acyclic;
          break;
        case graph::GraphClass::kCyclic: reason = row.cyclic; break;
      }
    }
    for (const char* mode : {"ind", "int"}) {
      MethodVerdict v;
      v.method = std::string("mc/") + row.name + "/" + mode;
      v.verdict = Verdict::kSafe;
      v.reason = reason;
      report->verdicts.push_back(std::move(v));
    }
  }
}

}  // namespace

CountingSafetyReport AnalyzeCountingSafety(const dl::Program& program,
                                           const Database* db,
                                           dl::DiagnosticBag* bag) {
  CountingSafetyReport report;
  if (program.queries.size() != 1) return report;
  const dl::Query& query = program.queries[0];

  dl::Program goal_part, support;
  if (!SplitByGoal(program, query.goal.predicate, &goal_part, &support)) {
    return report;
  }

  // Recognize the query form, preferring the cheaper-to-run shapes, exactly
  // like the planner's strategy order.
  std::string unknown_reason;
  dl::Term source_constant;
  bool have_source_term = false;
  Result<rewrite::CslQuery> csl = rewrite::RecognizeCsl(goal_part);
  if (csl.ok()) {
    report.form = QueryForm::kCanonical;
    report.signature = csl->ToString();
    report.l_predicate = csl->l;
    report.e_predicate = csl->e;
    report.r_predicate = csl->r;
    source_constant = csl->source;
    have_source_term = true;
  } else {
    Result<rewrite::StronglyLinearQuery> slq =
        rewrite::RecognizeStronglyLinear(goal_part);
    if (slq.ok()) {
      report.form = QueryForm::kComposed;
      report.signature = slq->ToString();
      source_constant = slq->source;
      have_source_term = true;
      if (slq->prefix_is_atom) {
        report.l_predicate = slq->prefix[0].atom.predicate;
      } else {
        unknown_reason =
            "the L-part is a conjunction; its graph exists only after "
            "materialization";
      }
      if (slq->exit_is_atom) {
        report.e_predicate = slq->exit_body[0].atom.predicate;
      }
      if (slq->suffix_is_atom) {
        report.r_predicate = slq->suffix[0].atom.predicate;
      }
    } else {
      Result<rewrite::ReverseCsl> rev =
          rewrite::RecognizeReverseCsl(goal_part, "mcm_eswap");
      if (rev.ok()) {
        report.form = QueryForm::kReverseBound;
        report.signature = rev->csl.ToString();
        // The mirrored query's magic graph is the graph of the original R.
        report.l_predicate = rev->csl.l;
        // The mirrored E ("mcm_eswap") only exists after materialization,
        // so leave e_predicate empty; the mirrored R is the original L.
        report.r_predicate = rev->csl.r;
        source_constant = rev->csl.source;
        have_source_term = true;
      } else {
        return report;  // outside the paper's class: nothing to report
      }
    }
  }

  report.source_term = source_constant;
  report.have_source_term = have_source_term;

  bag->Add(DiagCode::kQueryClassCsl, query.span(),
           "query is " + std::string(QueryFormToString(report.form)) + ": " +
               report.signature);
  const dl::Term* source_term =
      have_source_term ? &source_constant : nullptr;

  // Pick the EDB statistics source: a caller-supplied database that already
  // holds the L relation wins; otherwise in-program ground facts are
  // materialized into a scratch database.
  Database scratch;
  const Relation* l_rel = nullptr;
  const SymbolTable* symbols = nullptr;
  if (!report.l_predicate.empty()) {
    if (db != nullptr && db->Find(report.l_predicate) != nullptr) {
      l_rel = db->Find(report.l_predicate);
      symbols = &db->symbols();
    } else {
      MaterializeGroundFacts(program, report.l_predicate, &scratch);
      if (const Relation* rel = scratch.Find(report.l_predicate);
          rel != nullptr && !rel->empty()) {
        l_rel = rel;
        symbols = &scratch.symbols();
      } else {
        unknown_reason = "no facts or stored relation for '" +
                         report.l_predicate + "'";
      }
    }
  }

  Value source = 0;
  bool have_source = false;
  if (l_rel != nullptr && l_rel->arity() == 2 && source_term != nullptr) {
    have_source = ResolveGroundTerm(*source_term, *symbols, &source);
    if (!have_source) {
      // The query constant never occurs in the data: the magic graph is the
      // isolated source node — trivially regular, every method safe.
      report.analyzed = true;
      report.graph_class = graph::GraphClass::kRegular;
      report.magic_nodes = 1;
      report.single_nodes = 1;
    }
  } else if (l_rel != nullptr && l_rel->arity() != 2) {
    unknown_reason = "relation '" + report.l_predicate + "' is not binary";
    l_rel = nullptr;
  }

  if (l_rel != nullptr && have_source) {
    // The magic graph depends only on the L arcs and the source, so empty
    // E/R stand-ins suffice for classification.
    Relation empty_e("mcm_lint_e", 2), empty_r("mcm_lint_r", 2);
    auto qg = graph::QueryGraph::Build(*l_rel, empty_e, empty_r, source);
    if (qg.ok()) {
      graph::MagicGraphAnalysis mga =
          graph::AnalyzeMagicGraph(qg->magic_graph(), qg->source());
      report.analyzed = true;
      report.graph_class = mga.graph_class;
      report.magic_nodes = qg->n_l();
      report.magic_arcs = qg->m_l();
      for (graph::NodeClass c : mga.node_class) {
        switch (c) {
          case graph::NodeClass::kSingle: ++report.single_nodes; break;
          case graph::NodeClass::kMultiple: ++report.multiple_nodes; break;
          case graph::NodeClass::kRecurring: ++report.recurring_nodes; break;
        }
      }
    } else {
      unknown_reason = qg.status().message();
    }
  }

  // --- Verdict table --------------------------------------------------
  {
    MethodVerdict v;
    v.method = "counting";
    if (!report.analyzed) {
      v.verdict = Verdict::kUnknown;
      v.reason = "cannot build the magic graph statically (" +
                 (unknown_reason.empty() ? std::string("no EDB statistics")
                                         : unknown_reason) +
                 ")";
    } else if (report.graph_class == graph::GraphClass::kCyclic) {
      v.verdict = Verdict::kUnsafe;
      v.reason = "magic graph is cyclic (" +
                 std::to_string(report.recurring_nodes) +
                 " recurring node(s)): the counting-set fixpoint diverges; "
                 "Theorem 1(b) cannot hold";
    } else {
      v.verdict = Verdict::kSafe;
      v.reason = "magic graph is acyclic: every index set I_b is finite";
    }
    report.verdicts.push_back(std::move(v));
  }
  {
    MethodVerdict v;
    v.method = "magic_sets";
    v.verdict = Verdict::kSafe;
    v.reason = "safe on every instance (no counting indices involved)";
    report.verdicts.push_back(std::move(v));
  }
  AddMcVerdicts(&report);

  if (!report.analyzed) {
    bag->Add(DiagCode::kNoEdbStats, query.span(),
             "counting-safety: " +
                 (unknown_reason.empty()
                      ? std::string("no EDB statistics available")
                      : unknown_reason) +
                 "; verdicts for pure counting are structural only");
  } else if (report.graph_class == graph::GraphClass::kCyclic) {
    bag->Add(DiagCode::kCountingUnsafe,
             RecursiveRuleSpan(program, query.goal.predicate),
             "pure counting is unsafe for this instance: magic graph over '" +
                 report.l_predicate + "' is cyclic (" +
                 std::to_string(report.recurring_nodes) + " of " +
                 std::to_string(report.magic_nodes) +
                 " node(s) recurring); unsafe methods: counting "
                 "(independent and integrated); safe alternatives: "
                 "magic_sets and every magic counting method "
                 "(mc/basic..mc/recurring routes recurring nodes to the "
                 "magic side)");
  }

  return report;
}

}  // namespace mcm::analysis
