// Pass 5: abstract cost interpretation (Propositions 4-7, Tables 1-5).
//
// Derives the paper's cost parameters — n_L, m_L, m_R, the node/arc counts
// of the single/multiple/recurring partitions, cyclicity and regularity —
// from the magic-graph skeleton plus the EDB relations, and evaluates, for
// every strategy the repo implements (plain counting, magic sets, and the
// eight magic counting methods B/S/M/R x IND/INT), two numbers per method:
//
//   * `worst_case`: the Theta-formula of Propositions 4-7 exactly as the
//     paper states it (and as bench_table1..5 check it empirically), e.g.
//     m_L + (m_L - m_s)*m_R + n_s*m_R for multiple/integrated;
//   * `predicted`: an instance-tightened reading of the same structure
//     where the worst-case factors are replaced by exact skeleton
//     quantities — the counting-set ascent costs sum |I_b| * outdeg(b)
//     over the counting region (instead of the n_L * m_L bound) and the
//     level-wise descent costs (#levels) * m_R (instead of n * m_R, which
//     is tight only for chain-shaped regions). The magic-side terms
//     (m_L - m_X) * m_R stay worst-case: magic-set descent work depends on
//     answer multiplicities the skeleton cannot see.
//
// `predicted` drives the planner's cost-ranked method selection;
// `worst_case` is what the golden tests pin against the paper. The report
// also instantiates the Figure 3 dominance partial order on the predicted
// costs and emits N6xx notes (one N601 per method, one N602 ranking
// summary, N603 when the parameters are not statically derivable).
#pragma once

#include <string>
#include <vector>

#include "analysis/safety.h"
#include "datalog/ast.h"
#include "datalog/diagnostic.h"
#include "graph/classify.h"
#include "storage/database.h"

namespace mcm::analysis {

/// One row of the cost table.
struct CostEstimate {
  std::string method;  ///< "counting", "magic_sets", "mc/basic/ind", ...
  Verdict verdict = Verdict::kUnknown;  ///< copied from the safety table
  bool finite = true;      ///< false: the method diverges on this instance
  double predicted = 0.0;  ///< instance-tightened tuple-retrieval estimate
  double worst_case = 0.0; ///< the paper's Theta formula, instantiated
  std::string formula;     ///< the worst-case formula, human readable
};

/// One arc of the Figure 3 partial order, instantiated on this instance.
struct CostDominance {
  std::string better;
  std::string worse;
  bool average_only = false;  ///< dotted arc: dominance on the average only
  bool holds = false;  ///< predicted(better) <= predicted(worse) held here
};

/// \brief The cost table plus everything needed to explain it.
struct CostReport {
  /// True when the parameters were derived and the estimates evaluated.
  bool computed = false;
  std::string note;  ///< why not, when !computed

  // --- instance parameters (the paper's names) ------------------------
  size_t n_l = 0;
  size_t m_l = 0;
  size_t m_r = 0;
  size_t m_e = 0;
  /// m_r counts only R-arcs reachable in the query graph when E and R were
  /// available as stored binary relations; otherwise it falls back to |R|
  /// (an upper bound) and this is false.
  bool m_r_exact = false;
  graph::GraphClass graph_class = graph::GraphClass::kRegular;
  graph::MagicGraphAnalysis params;  ///< partitions + Table 3-5 parameters

  /// All ten strategies in table order (counting, magic_sets, mc/...).
  std::vector<CostEstimate> estimates;
  /// Figure 3 arcs whose graph-class condition matches this instance.
  std::vector<CostDominance> dominance;
  /// Safe, finite methods ordered by predicted cost, cheapest first. Ties
  /// break toward the method with the cheaper Step 1 (counting first, then
  /// basic, then integrated before independent within a variant).
  std::vector<std::string> ranking;

  /// Row for a named method; nullptr if the table was not computed.
  const CostEstimate* EstimateFor(const std::string& method) const;

  /// Render the cost table (aligned columns) plus the ranking line.
  std::string ToString() const;
};

/// Evaluate the cost model for the query analyzed by `safety` (the pass is
/// a no-op returning computed == false when the query is outside the
/// strongly linear class). `db` supplies the EDB relations and may be null;
/// in-program ground facts are materialized into a scratch database then,
/// mirroring the safety pass.
CostReport AnalyzeCost(const dl::Program& program,
                       const CountingSafetyReport& safety, const Database* db,
                       dl::DiagnosticBag* bag);

}  // namespace mcm::analysis
