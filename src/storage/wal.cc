#include "storage/wal.h"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>

#include "storage/io.h"
#include "util/crc32.h"
#include "util/fault_injection.h"
#include "util/string_util.h"

namespace mcm {

namespace {

constexpr char kWalMagic[8] = {'M', 'C', 'M', 'W', 'A', 'L', '0', '1'};
constexpr size_t kHeaderBytes = sizeof(kWalMagic) + sizeof(uint64_t);
constexpr size_t kRecordHeaderBytes = 2 * sizeof(uint32_t);
// A record longer than this is assumed to be a corrupt length prefix, not a
// real batch — it bounds allocation during replay.
constexpr uint32_t kMaxRecordBytes = 1u << 30;

void PutLe32(std::string* out, uint32_t v) {
  for (int i = 0; i < 4; ++i) out->push_back(static_cast<char>(v >> (8 * i)));
}

void PutLe64(std::string* out, uint64_t v) {
  for (int i = 0; i < 8; ++i) out->push_back(static_cast<char>(v >> (8 * i)));
}

uint32_t GetLe32(const char* p) {
  uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<uint32_t>(static_cast<unsigned char>(p[i])) << (8 * i);
  }
  return v;
}

uint64_t GetLe64(const char* p) {
  uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<uint64_t>(static_cast<unsigned char>(p[i])) << (8 * i);
  }
  return v;
}

Status ErrnoStatus(const std::string& what) {
  return Status::Internal(what + ": " + std::strerror(errno));
}

Status WriteAllFd(int fd, std::string_view bytes) {
  const char* p = bytes.data();
  size_t left = bytes.size();
  while (left > 0) {
    ssize_t n = ::write(fd, p, left);
    if (n < 0) {
      if (errno == EINTR) continue;
      return ErrnoStatus("wal write");
    }
    p += n;
    left -= static_cast<size_t>(n);
  }
  return Status::OK();
}

}  // namespace

WalReplayResult ReplayWal(const std::string& path) {
  WalReplayResult result;
  std::string bytes;
  Status read = ReadFileToString(path, &bytes);
  if (!read.ok()) {
    result.status = read;
    return result;
  }

  if (bytes.size() < kHeaderBytes ||
      std::memcmp(bytes.data(), kWalMagic, sizeof(kWalMagic)) != 0) {
    // Distinguish "not a WAL at all" from "a WAL from a different format
    // version": the latter names both versions so an operator pointing an
    // old binary at a newer log (or vice versa) sees exactly what to fix
    // instead of a generic corruption verdict.
    if (bytes.size() >= sizeof(kWalMagic) &&
        std::memcmp(bytes.data(), kWalMagic, 6) == 0) {
      result.status = Status::DataLoss(
          "wal '" + path + "': unsupported wal version '" +
          std::string(bytes.data(), sizeof(kWalMagic)) + "' (supported: " +
          std::string(kWalMagic, sizeof(kWalMagic)) + ")");
      return result;
    }
    result.status = Status::DataLoss("wal '" + path +
                                     "': missing or mangled header");
    return result;
  }
  result.base_epoch = GetLe64(bytes.data() + sizeof(kWalMagic));
  size_t pos = kHeaderBytes;
  result.valid_bytes = pos;

  while (pos < bytes.size()) {
    if (bytes.size() - pos < kRecordHeaderBytes) {
      result.status = Status::DataLoss(StringPrintf(
          "wal torn record header at offset %zu (%zu trailing bytes)", pos,
          bytes.size() - pos));
      return result;
    }
    uint32_t len = GetLe32(bytes.data() + pos);
    uint32_t crc = GetLe32(bytes.data() + pos + sizeof(uint32_t));
    if (len > kMaxRecordBytes ||
        bytes.size() - pos - kRecordHeaderBytes < len) {
      result.status = Status::DataLoss(StringPrintf(
          "wal torn record at offset %zu: %u payload bytes promised, "
          "%zu present",
          pos, len, bytes.size() - pos - kRecordHeaderBytes));
      return result;
    }
    std::string_view payload(bytes.data() + pos + kRecordHeaderBytes, len);
    if (util::Crc32(payload) != crc) {
      result.status = Status::DataLoss(StringPrintf(
          "wal checksum mismatch at offset %zu (record %zu)", pos,
          result.records.size()));
      return result;
    }
    result.records.push_back(WalRecord{pos, std::string(payload)});
    pos += kRecordHeaderBytes + len;
    result.valid_bytes = pos;
  }
  result.status = Status::OK();
  return result;
}

WalWriter::~WalWriter() {
  if (fd_ >= 0) ::close(fd_);
}

Result<std::unique_ptr<WalWriter>> WalWriter::Create(const std::string& path,
                                                     uint64_t base_epoch) {
  MCM_FAULT_POINT("wal/create");
  std::string header;
  header.append(kWalMagic, sizeof(kWalMagic));
  PutLe64(&header, base_epoch);

  // Temp-file + atomic-rename: a crash mid-creation must leave any previous
  // log (still referenced by an un-rotated checkpoint base) untouched.
  const std::string tmp = path + ".tmp";
  int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC,
                  0644);
  if (fd < 0) return ErrnoStatus("open '" + tmp + "'");
  Status st = WriteAllFd(fd, header);
  if (st.ok() && ::fsync(fd) != 0) st = ErrnoStatus("fsync '" + tmp + "'");
  if (st.ok() && ::rename(tmp.c_str(), path.c_str()) != 0) {
    st = ErrnoStatus("rename '" + tmp + "' -> '" + path + "'");
  }
  if (st.ok()) st = SyncParentDir(path);
  if (!st.ok()) {
    ::close(fd);
    ::unlink(tmp.c_str());
    return st;
  }
  // fd still refers to the (now renamed) log; keep it for appending.
  return std::unique_ptr<WalWriter>(
      new WalWriter(fd, path, kHeaderBytes));
}

Result<std::unique_ptr<WalWriter>> WalWriter::OpenForAppend(
    const std::string& path, uint64_t offset) {
  int fd = ::open(path.c_str(), O_WRONLY | O_CLOEXEC);
  if (fd < 0) return ErrnoStatus("open '" + path + "'");
  // Drop any torn tail past the valid prefix so new records append cleanly.
  if (::ftruncate(fd, static_cast<off_t>(offset)) != 0) {
    Status st = ErrnoStatus("ftruncate '" + path + "'");
    ::close(fd);
    return st;
  }
  if (::lseek(fd, static_cast<off_t>(offset), SEEK_SET) < 0) {
    Status st = ErrnoStatus("lseek '" + path + "'");
    ::close(fd);
    return st;
  }
  return std::unique_ptr<WalWriter>(new WalWriter(fd, path, offset));
}

Status WalWriter::AppendRecord(std::string_view payload) {
  if (!broken_.ok()) return broken_;
  if (payload.size() > kMaxRecordBytes) {
    return Status::InvalidArgument(
        StringPrintf("wal record too large (%zu bytes)", payload.size()));
  }
  MCM_FAULT_POINT("wal/append");

  std::string frame;
  frame.reserve(kRecordHeaderBytes + payload.size());
  PutLe32(&frame, static_cast<uint32_t>(payload.size()));
  PutLe32(&frame, util::Crc32(payload));
  frame.append(payload);

  Status st = WriteAllFd(fd_, frame);
  if (st.ok()) st = util::FaultInjection::Instance().Check("wal/fsync");
  if (st.ok() && ::fsync(fd_) != 0) st = ErrnoStatus("wal fsync");
  if (st.ok()) {
    offset_ += frame.size();
    return st;
  }

  // Roll the file back so the failed record cannot shadow later commits.
  if (::ftruncate(fd_, static_cast<off_t>(offset_)) != 0 ||
      ::lseek(fd_, static_cast<off_t>(offset_), SEEK_SET) < 0) {
    broken_ = Status::DataLoss(
        "wal unwritable after failed append; log state unknown: " +
        st.ToString());
    return broken_;
  }
  return st;
}

}  // namespace mcm
