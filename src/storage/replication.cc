#include "storage/replication.h"

#include <sys/stat.h>

#include <algorithm>
#include <charconv>
#include <utility>
#include <vector>

#include "storage/io.h"
#include "storage/wal.h"
#include "util/crc32.h"
#include "util/fault_injection.h"
#include "util/string_util.h"

namespace mcm {

namespace {

// A frame payload longer than this is a corrupt length prefix, not a real
// snapshot or record — it bounds allocation on the follower.
constexpr uint32_t kMaxFramePayload = 1u << 30;

void PutLe32(std::string* out, uint32_t v) {
  for (int i = 0; i < 4; ++i) out->push_back(static_cast<char>(v >> (8 * i)));
}

void PutLe64(std::string* out, uint64_t v) {
  for (int i = 0; i < 8; ++i) out->push_back(static_cast<char>(v >> (8 * i)));
}

uint32_t GetLe32(const char* p) {
  uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<uint32_t>(static_cast<unsigned char>(p[i])) << (8 * i);
  }
  return v;
}

uint64_t GetLe64(const char* p) {
  uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<uint64_t>(static_cast<unsigned char>(p[i])) << (8 * i);
  }
  return v;
}

bool ValidFrameKind(char kind) {
  return kind == kFrameTip || kind == kFrameSnapshot || kind == kFrameRecord;
}

/// Batch sequence from a WAL record payload's leading "seq\t<n>\n" line,
/// without parsing the whole batch.
bool ParseSeqPrefix(std::string_view payload, uint64_t* seq) {
  size_t nl = payload.find('\n');
  if (nl == std::string_view::npos) return false;
  std::string_view head = payload.substr(0, nl);
  if (head.size() < 5 || head.substr(0, 4) != "seq\t") return false;
  std::string_view digits = head.substr(4);
  auto [ptr, ec] =
      std::from_chars(digits.data(), digits.data() + digits.size(), *seq);
  return ec == std::errc() && ptr == digits.data() + digits.size();
}

/// Epoch from a checkpoint image's second line ("epoch\t<n>"). The image is
/// not otherwise validated here — the follower's LoadCheckpoint owns that.
bool ParseCheckpointEpoch(std::string_view image, uint64_t* epoch) {
  size_t first_nl = image.find('\n');
  if (first_nl == std::string_view::npos) return false;
  size_t second_nl = image.find('\n', first_nl + 1);
  if (second_nl == std::string_view::npos) return false;
  std::string_view line =
      image.substr(first_nl + 1, second_nl - first_nl - 1);
  if (line.size() < 7 || line.substr(0, 6) != "epoch\t") return false;
  std::string_view digits = line.substr(6);
  auto [ptr, ec] =
      std::from_chars(digits.data(), digits.data() + digits.size(), *epoch);
  return ec == std::errc() && ptr == digits.data() + digits.size();
}

/// A replayed WAL record paired with its parsed batch sequence.
struct SeqRecord {
  uint64_t seq = 0;
  const std::string* payload = nullptr;
};

/// Extract (seq, payload) pairs from a replay, stopping at the first record
/// whose sequence cannot be parsed or exceeds `cap` (the primary's acked
/// tip — anything past it may still be rolled back by a failed fsync).
std::vector<SeqRecord> ShippableRecords(const WalReplayResult& replay,
                                        uint64_t cap) {
  std::vector<SeqRecord> out;
  out.reserve(replay.records.size());
  for (const WalRecord& r : replay.records) {
    uint64_t seq = 0;
    if (!ParseSeqPrefix(r.payload, &seq) || seq > cap) break;
    out.push_back({seq, &r.payload});
  }
  return out;
}

}  // namespace

// ---------------------------------------------------------------------------
// Frame codec

std::string EncodeFrame(char kind, uint64_t epoch, std::string_view payload) {
  std::string out;
  out.reserve(kFrameHeaderBytes + payload.size());
  out.push_back(kind);
  PutLe64(&out, epoch);
  PutLe32(&out, static_cast<uint32_t>(payload.size()));
  // CRC over kind + epoch + len, continued over the payload.
  uint32_t crc = util::Crc32(out.data(), out.size());
  crc = util::Crc32(payload, crc);
  PutLe32(&out, crc);
  out.append(payload);
  return out;
}

void FrameDecoder::Feed(std::string_view bytes) {
  // Compact the consumed prefix before growing the buffer.
  if (pos_ > 0) {
    buf_.erase(0, pos_);
    pos_ = 0;
  }
  buf_.append(bytes);
}

Result<std::optional<ReplFrame>> FrameDecoder::Next() {
  if (buf_.size() - pos_ < kFrameHeaderBytes) {
    return std::optional<ReplFrame>();
  }
  const char* p = buf_.data() + pos_;
  char kind = p[0];
  uint64_t epoch = GetLe64(p + 1);
  uint32_t len = GetLe32(p + 9);
  uint32_t crc = GetLe32(p + 13);
  if (!ValidFrameKind(kind)) {
    return Status::DataLoss(StringPrintf(
        "replication stream corrupt: unknown frame kind 0x%02x",
        static_cast<unsigned char>(kind)));
  }
  if (len > kMaxFramePayload) {
    return Status::DataLoss(StringPrintf(
        "replication stream corrupt: frame payload length %u exceeds limit",
        len));
  }
  if (buf_.size() - pos_ - kFrameHeaderBytes < len) {
    return std::optional<ReplFrame>();  // payload not fully arrived
  }
  std::string_view payload(buf_.data() + pos_ + kFrameHeaderBytes, len);
  uint32_t actual = util::Crc32(p, 13);  // kind + epoch + len
  actual = util::Crc32(payload, actual);
  if (actual != crc) {
    return Status::DataLoss(StringPrintf(
        "replication stream corrupt: frame checksum mismatch (kind '%c', "
        "epoch %llu)",
        kind, static_cast<unsigned long long>(epoch)));
  }
  ReplFrame frame;
  frame.kind = kind;
  frame.epoch = epoch;
  frame.payload = std::string(payload);
  pos_ += kFrameHeaderBytes + len;
  return std::optional<ReplFrame>(std::move(frame));
}

Status FrameDecoder::Finish() const {
  if (buf_.size() - pos_ == 0) return Status::OK();
  return Status::DataLoss(StringPrintf(
      "replication stream torn mid-frame: %zu trailing bytes at end of "
      "stream",
      buf_.size() - pos_));
}

// ---------------------------------------------------------------------------
// InProcessPipe

Status InProcessPipe::Write(std::string_view bytes) {
  util::MutexLock lock(mu_);
  if (closed_) {
    return Status::Unavailable("pipe closed: follower end went away");
  }
  buf_.append(bytes);
  return Status::OK();
}

Result<std::string> InProcessPipe::Read(size_t max_bytes) {
  util::MutexLock lock(mu_);
  if (buf_.empty()) {
    if (closed_) return std::string();  // end of stream
    return Status::Unavailable("pipe empty: no bytes buffered");
  }
  size_t n = std::min(max_bytes, buf_.size());
  std::string out = buf_.substr(0, n);
  buf_.erase(0, n);
  return out;
}

void InProcessPipe::CloseWrite() {
  util::MutexLock lock(mu_);
  closed_ = true;
}

void InProcessPipe::CloseTorn(size_t drop_trailing_bytes) {
  util::MutexLock lock(mu_);
  buf_.resize(buf_.size() - std::min(drop_trailing_bytes, buf_.size()));
  closed_ = true;
}

// ---------------------------------------------------------------------------
// WalShipper

Status WalShipper::Send(char kind, uint64_t epoch, std::string_view payload) {
  return sink_->Write(EncodeFrame(kind, epoch, payload));
}

Status WalShipper::Pump(uint64_t from_epoch) {
  MCM_FAULT_POINT("repl/ship");

  const std::string wal_path = options_.dir + "/wal.log";
  const std::string prev_path = options_.dir + "/wal.prev.log";
  const std::string ckpt_path = options_.dir + "/checkpoint.mcm";

  WalReplayResult cur = ReplayWal(wal_path);
  if (cur.status.IsNotFound()) {
    // Fresh primary, nothing durable yet: advertise tip 0 so the follower's
    // lag gauge reads zero rather than stale.
    MCM_RETURN_NOT_OK(Send(kFrameTip, 0, {}));
    return Status::OK();
  }
  if (!cur.status.ok() && !cur.status.IsDataLoss()) return cur.status;
  // A kDataLoss tail on the live log is the primary's in-flight (unacked)
  // suffix as seen by a tailing reader — ship only the complete records.

  uint64_t cap = options_.primary != nullptr ? options_.primary->TipEpoch()
                                             : UINT64_MAX;
  std::vector<SeqRecord> records = ShippableRecords(cur, cap);
  uint64_t tip = records.empty() ? cur.base_epoch : records.back().seq;

  // Tip first, always: if the stream tears before the records land, the
  // follower still learns how far the primary's acked history extends —
  // the fact Promote() needs to refuse a lossy failover.
  MCM_RETURN_NOT_OK(Send(kFrameTip, tip, {}));

  if (from_epoch >= tip) {
    shipped_epoch_ = std::max(shipped_epoch_, tip);
    return Status::OK();
  }

  if (from_epoch < cur.base_epoch) {
    // The live log starts past the follower. Try the retained previous
    // segment: usable iff it reaches back to from_epoch AND chains up to
    // the live log's base (no epoch hole between segments).
    WalReplayResult prev = ReplayWal(prev_path);
    std::vector<SeqRecord> prev_records;
    bool prev_usable = false;
    if (prev.status.ok() && prev.base_epoch <= from_epoch) {
      prev_records = ShippableRecords(prev, cap);
      uint64_t prev_last =
          prev_records.empty() ? prev.base_epoch : prev_records.back().seq;
      prev_usable = prev_last >= cur.base_epoch &&
                    prev_records.size() == prev.records.size();
    }
    if (prev_usable) {
      for (const SeqRecord& r : prev_records) {
        if (r.seq <= from_epoch || r.seq > cur.base_epoch) continue;
        MCM_RETURN_NOT_OK(Send(kFrameRecord, r.seq, *r.payload));
      }
    } else {
      // Further behind than the retained WAL reaches: snapshot reseed.
      std::string image;
      Status read = ReadFileToString(ckpt_path, &image);
      if (!read.ok()) {
        return Status::DataLoss(StringPrintf(
            "cannot serve catch-up from epoch %llu: wal starts at epoch "
            "%llu and no checkpoint is available (%s)",
            static_cast<unsigned long long>(from_epoch),
            static_cast<unsigned long long>(cur.base_epoch),
            read.ToString().c_str()));
      }
      uint64_t snap_epoch = 0;
      if (!ParseCheckpointEpoch(image, &snap_epoch)) {
        return Status::DataLoss(
            "primary checkpoint image has no parseable epoch header");
      }
      MCM_RETURN_NOT_OK(Send(kFrameSnapshot, snap_epoch, image));
      from_epoch = snap_epoch;
    }
  }

  for (const SeqRecord& r : records) {
    if (r.seq <= from_epoch) continue;
    MCM_RETURN_NOT_OK(Send(kFrameRecord, r.seq, *r.payload));
  }
  shipped_epoch_ = std::max(shipped_epoch_, tip);
  return Status::OK();
}

// ---------------------------------------------------------------------------
// FileTailSource

FileTailSource::FileTailSource(Options options)
    : options_(std::move(options)),
      shipper_(WalShipper::Options{options_.dir, options_.primary},
               &buffer_) {}

FileTailSource::Clock::time_point FileTailSource::Now() const {
  return options_.now ? options_.now() : Clock::now();
}

Result<std::string> FileTailSource::Read(size_t max_bytes) {
  if (!halt_.ok()) return halt_;

  // Frames from the previous pump drain first; the directory is not
  // touched again while buffered bytes remain.
  Result<std::string> buffered = buffer_.Read(max_bytes);
  if (buffered.ok()) return buffered;

  const Clock::time_point now = Now();
  if (have_next_pump_ && now < next_pump_) {
    return Status::Unavailable(
        "file tail gated: next directory read not yet due");
  }

  // Schedule the follow-up *before* knowing the outcome so every exit path
  // below is paced; failure paths overwrite with the backed-off gap.
  auto schedule = [&](bool failed) {
    uint64_t gap = options_.poll_interval_ms;
    if (failed) {
      uint64_t base = std::max<uint64_t>(options_.poll_interval_ms, 1);
      int shift = std::min(consecutive_failures_, 20);
      gap = std::min(base << shift, options_.max_backoff_ms);
    }
    next_pump_ = now + std::chrono::milliseconds(gap);
    have_next_pump_ = true;
  };

  struct stat st;
  const bool dir_exists =
      ::stat(options_.dir.c_str(), &st) == 0 && S_ISDIR(st.st_mode);
  if (!dir_exists && saw_dir_) {
    if (!dir_missing_) {
      dir_missing_ = true;
      dir_missing_since_ = now;
    }
    if (now - dir_missing_since_ >=
        std::chrono::milliseconds(options_.missing_dir_deadline_ms)) {
      halt_ = Status::DeadlineExceeded(StringPrintf(
          "shipped directory '%s' missing for over %llu ms; giving up the "
          "tail",
          options_.dir.c_str(),
          static_cast<unsigned long long>(options_.missing_dir_deadline_ms)));
      return halt_;
    }
    ++consecutive_failures_;
    schedule(/*failed=*/true);
    return Status::Unavailable(StringPrintf(
        "shipped directory '%s' missing; backing off", options_.dir.c_str()));
  }
  if (dir_exists) {
    saw_dir_ = true;
    dir_missing_ = false;
  }

  ++pump_count_;
  Status pumped = pump_count_ == 1 ? shipper_.Pump(options_.start_epoch)
                                   : shipper_.Pump();
  if (!pumped.ok()) {
    ++consecutive_failures_;
    schedule(/*failed=*/true);
    // Sticky verdicts (kDataLoss: catch-up impossible) pass through so the
    // Follower halts; transient pump errors surface as themselves and the
    // next Read after the backoff gap retries.
    return pumped;
  }
  consecutive_failures_ = 0;
  schedule(/*failed=*/false);

  Result<std::string> fresh = buffer_.Read(max_bytes);
  if (fresh.ok()) return fresh;
  return Status::Unavailable("file tail idle: no new frames");
}

// ---------------------------------------------------------------------------
// Follower

namespace {

/// Fatal-to-the-stream statuses stick; everything else is retried.
bool IsStickyVerdict(const Status& s) {
  return s.IsDataLoss() || s.IsFailedPrecondition();
}

}  // namespace

Status Follower::Halt(Status verdict) {
  util::MutexLock lock(mu_);
  if (health_.halt.ok()) health_.halt = verdict;
  return health_.halt;
}

Status Follower::HandleFrame(const ReplFrame& frame) {
  switch (frame.kind) {
    case kFrameTip: {
      util::MutexLock lock(mu_);
      health_.primary_tip_epoch =
          std::max(health_.primary_tip_epoch, frame.epoch);
      return Status::OK();
    }
    case kFrameRecord: {
      Result<uint64_t> applied = store_->ApplyReplicated(frame.payload);
      if (!applied.ok()) return applied.status();
      util::MutexLock lock(mu_);
      health_.applied_epoch = std::max(health_.applied_epoch, *applied);
      // A record at epoch e proves the primary committed e even if the 'T'
      // frame advertising it was lost.
      health_.primary_tip_epoch =
          std::max(health_.primary_tip_epoch, health_.applied_epoch);
      return Status::OK();
    }
    case kFrameSnapshot: {
      if (store_->TipEpoch() >= frame.epoch) {
        return Status::OK();  // redelivery after a shipper restart
      }
      Result<uint64_t> installed = store_->InstallSnapshot(frame.payload);
      if (!installed.ok()) return installed.status();
      if (*installed != frame.epoch) {
        return Status::DataLoss(StringPrintf(
            "snapshot frame advertised epoch %llu but image is epoch %llu",
            static_cast<unsigned long long>(frame.epoch),
            static_cast<unsigned long long>(*installed)));
      }
      util::MutexLock lock(mu_);
      health_.applied_epoch = std::max(health_.applied_epoch, *installed);
      health_.primary_tip_epoch =
          std::max(health_.primary_tip_epoch, health_.applied_epoch);
      return Status::OK();
    }
    default:
      // FrameDecoder validated the kind; reaching here is a logic error.
      return Status::DataLoss("unhandled frame kind");
  }
}

Status Follower::Poll() {
  {
    util::MutexLock lock(mu_);
    if (!health_.halt.ok()) return health_.halt;
    if (health_.promoted) {
      return Status::FailedPrecondition(
          "follower was promoted; it no longer consumes the stream");
    }
  }

  // A frame that failed transiently is retried before any new bytes are
  // consumed — frames apply strictly in stream order.
  bool handled_any = false;
  if (pending_.has_value()) {
    Status st = HandleFrame(*pending_);
    if (!st.ok()) return IsStickyVerdict(st) ? Halt(st) : st;
    pending_.reset();
    handled_any = true;
  }

  while (true) {
    // Drain frames already buffered BEFORE reading more: a retried frame
    // may have left complete frames behind it in the decoder, and they
    // must apply even when the transport has nothing new to say.
    while (true) {
      Result<std::optional<ReplFrame>> next = decoder_.Next();
      if (!next.ok()) return Halt(next.status());
      if (!next->has_value()) break;
      Status st = HandleFrame(**next);
      if (!st.ok()) {
        if (IsStickyVerdict(st)) return Halt(st);
        pending_ = std::move(**next);
        return st;
      }
      handled_any = true;
    }

    // Caught up to everything the primary has acknowledged: yield. Without
    // this, a primary whose pump interval undercuts the transport's read
    // timeout re-advertises its tip faster than an idle read can expire,
    // and Poll never sees the kUnavailable that would otherwise end it —
    // it blocks until the link dies (livelock on tip frames).
    if (handled_any) {
      util::MutexLock lock(mu_);
      if (health_.applied_epoch >= health_.primary_tip_epoch) break;
    }

    if (eof_) {
      // End of stream: clean iff it landed exactly on a frame boundary.
      Status fin = decoder_.Finish();
      if (!fin.ok()) return Halt(fin);
      break;
    }

    Result<std::string> chunk = source_->Read(64 * 1024);
    if (!chunk.ok()) {
      if (chunk.status().IsUnavailable()) break;  // nothing new; healthy
      return IsStickyVerdict(chunk.status()) ? Halt(chunk.status())
                                             : chunk.status();
    }
    if (chunk->empty()) {
      eof_ = true;
    } else {
      decoder_.Feed(*chunk);
    }
  }
  return Status::OK();
}

Status Follower::Promote() {
  util::MutexLock lock(mu_);
  if (!health_.halt.ok()) return health_.halt;
  if (health_.promoted) return Status::OK();
  if (pending_.has_value()) {
    // An un-applied record is in flight; its epoch is part of the primary's
    // acked history (the tip frame preceding it said so), so this reduces
    // to the lag check below — but state it distinctly for operators.
    health_.halt = Status::DataLoss(
        "promotion refused: a received record is not yet applied");
    return health_.halt;
  }
  if (health_.primary_tip_epoch > health_.applied_epoch) {
    health_.halt = Status::DataLoss(StringPrintf(
        "promotion would lose acknowledged commits: primary advertised "
        "epoch %llu but follower applied only epoch %llu",
        static_cast<unsigned long long>(health_.primary_tip_epoch),
        static_cast<unsigned long long>(health_.applied_epoch)));
    return health_.halt;
  }
  health_.promoted = true;
  return Status::OK();
}

Follower::Health Follower::health() const {
  util::MutexLock lock(mu_);
  return health_;
}

}  // namespace mcm
