#include "storage/versioned_store.h"

#include <algorithm>
#include <charconv>
#include <filesystem>
#include <optional>
#include <unordered_set>
#include <utility>

#include "storage/io.h"
#include "storage/tuple.h"
#include "util/crc32.h"
#include "util/fault_injection.h"
#include "util/string_util.h"

namespace mcm {

namespace {

bool ParseInt64(std::string_view s, int64_t* out) {
  if (s.empty()) return false;
  auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), *out);
  return ec == std::errc() && ptr == s.data() + s.size();
}

bool ParseUint64(std::string_view s, uint64_t* out) {
  if (s.empty()) return false;
  auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), *out);
  return ec == std::errc() && ptr == s.data() + s.size();
}

/// Fields and relation names travel tab-separated, one op per line, so the
/// three structural characters are backslash-escaped.
std::string EscapeField(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '\\':
        out += "\\\\";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\n':
        out += "\\n";
        break;
      default:
        out.push_back(c);
    }
  }
  return out;
}

bool UnescapeField(std::string_view s, std::string* out) {
  out->clear();
  out->reserve(s.size());
  for (size_t i = 0; i < s.size(); ++i) {
    if (s[i] != '\\') {
      out->push_back(s[i]);
      continue;
    }
    if (++i >= s.size()) return false;
    switch (s[i]) {
      case '\\':
        out->push_back('\\');
        break;
      case 't':
        out->push_back('\t');
        break;
      case 'n':
        out->push_back('\n');
        break;
      default:
        return false;
    }
  }
  return true;
}

const char* OpKeyword(UpdateOpKind kind) {
  switch (kind) {
    case UpdateOpKind::kInsert:
      return "insert";
    case UpdateOpKind::kDelete:
      return "delete";
    case UpdateOpKind::kCreateRelation:
      return "create";
    case UpdateOpKind::kDropRelation:
      return "drop";
  }
  return "?";
}

size_t VersionApproxBytes(
    const std::map<std::string, std::shared_ptr<const Relation>>& relations) {
  // Mirrors Database::ApproxBytes so the service's memory budget treats
  // snapshots from either source identically.
  constexpr size_t kPerTupleOverhead = 32;
  size_t total = 0;
  for (const auto& [name, rel] : relations) {
    (void)name;
    total += rel->size() * (rel->arity() * sizeof(Value) + kPerTupleOverhead);
  }
  return total;
}

}  // namespace

// ---------------------------------------------------------------------------
// EdbVersion

const Relation* EdbVersion::Find(const std::string& name) const {
  auto it = relations_.find(name);
  return it == relations_.end() ? nullptr : it->second.get();
}

std::shared_ptr<const Relation> EdbVersion::Share(
    const std::string& name) const {
  auto it = relations_.find(name);
  return it == relations_.end() ? nullptr : it->second;
}

std::vector<std::string> EdbVersion::RelationNames() const {
  std::vector<std::string> names;
  names.reserve(relations_.size());
  for (const auto& [name, rel] : relations_) {
    (void)rel;
    names.push_back(name);
  }
  return names;
}

size_t EdbVersion::TotalTuples() const {
  size_t total = 0;
  for (const auto& [name, rel] : relations_) {
    (void)name;
    total += rel->size();
  }
  return total;
}

Status EdbVersion::SnapshotInto(Database* dst) const {
  for (const auto& [name, rel] : relations_) {
    Relation* copy = dst->Find(name);
    if (copy == nullptr) {
      copy = dst->GetOrCreateRelation(name, rel->arity());
    } else if (copy->arity() != rel->arity()) {
      return Status::InvalidArgument(
          "snapshot arity mismatch for relation '" + name + "'");
    }
    for (const Tuple& t : rel->TuplesUnchecked()) copy->Insert(t);
  }
  return Status::OK();
}

// ---------------------------------------------------------------------------
// VersionedStore

VersionedStore::VersionedStore(Options options)
    : options_(std::move(options)) {
  util::MutexLock commit_lock(commit_mu_);
  util::MutexLock tip_lock(tip_mu_);
  tip_ = std::shared_ptr<const EdbVersion>(new EdbVersion());
}

std::shared_ptr<const EdbVersion> VersionedStore::Pin() const {
  util::MutexLock lock(tip_mu_);
  return tip_;
}

void VersionedStore::SetTip(std::shared_ptr<const EdbVersion> v) {
  util::MutexLock lock(tip_mu_);
  tip_ = std::move(v);
}

Status VersionedStore::ValidateAndBind(const UpdateBatch& batch,
                                       const EdbVersion& base,
                                       std::vector<BoundOp>* bound) {
  if (batch.empty()) {
    return Status::InvalidArgument("empty update batch");
  }
  // Arity of every relation live at this point of the batch: base overlaid
  // with the creates/drops seen so far. nullopt = dropped.
  std::map<std::string, std::optional<uint32_t>> overlay;
  auto live_arity = [&](const std::string& name) -> std::optional<uint32_t> {
    auto it = overlay.find(name);
    if (it != overlay.end()) return it->second;
    const Relation* rel = base.Find(name);
    if (rel == nullptr) return std::nullopt;
    return rel->arity();
  };

  bound->clear();
  bound->reserve(batch.ops.size());
  for (size_t i = 0; i < batch.ops.size(); ++i) {
    const UpdateOp& op = batch.ops[i];
    BoundOp b;
    b.kind = op.kind;
    b.relation = op.relation;
    if (op.relation.empty()) {
      return Status::InvalidArgument(
          StringPrintf("op #%zu: empty relation name", i));
    }
    switch (op.kind) {
      case UpdateOpKind::kCreateRelation:
        if (op.arity == 0 || op.arity > kMaxTupleArity) {
          return Status::InvalidArgument(StringPrintf(
              "op #%zu: relation '%s' arity %u out of range [1, %u]", i,
              op.relation.c_str(), op.arity, kMaxTupleArity));
        }
        if (live_arity(op.relation).has_value()) {
          return Status::AlreadyExists(StringPrintf(
              "op #%zu: relation '%s' already exists", i,
              op.relation.c_str()));
        }
        overlay[op.relation] = op.arity;
        b.arity = op.arity;
        break;
      case UpdateOpKind::kDropRelation:
        if (!live_arity(op.relation).has_value()) {
          return Status::NotFound(StringPrintf(
              "op #%zu: relation '%s' not found", i, op.relation.c_str()));
        }
        overlay[op.relation] = std::nullopt;
        break;
      case UpdateOpKind::kInsert:
      case UpdateOpKind::kDelete: {
        std::optional<uint32_t> arity = live_arity(op.relation);
        if (!arity.has_value()) {
          return Status::NotFound(StringPrintf(
              "op #%zu: relation '%s' not found (create it first)", i,
              op.relation.c_str()));
        }
        if (op.fields.size() != *arity) {
          return Status::InvalidArgument(StringPrintf(
              "op #%zu: relation '%s' expects %u fields, got %zu", i,
              op.relation.c_str(), *arity, op.fields.size()));
        }
        b.arity = *arity;
        b.tuple = Tuple(*arity);
        for (uint32_t c = 0; c < *arity; ++c) {
          int64_t v;
          // Interning is append-only, so binding a batch that is later
          // rejected leaves at most unused symbols behind — harmless.
          b.tuple[c] = ParseInt64(op.fields[c], &v)
                           ? v
                           : symbols_.Intern(op.fields[c]);
        }
        break;
      }
    }
    bound->push_back(std::move(b));
  }
  return Status::OK();
}

std::shared_ptr<const EdbVersion> VersionedStore::BuildVersion(
    const EdbVersion& base, const std::vector<BoundOp>& bound,
    uint64_t epoch) const {
  auto v = std::shared_ptr<EdbVersion>(new EdbVersion());
  v->epoch_ = epoch;
  v->relations_ = base.relations_;  // COW: untouched relations are shared

  // Working set per touched relation: insertion order plus live membership,
  // materialized from the base relation on first touch.
  struct Work {
    uint32_t arity = 0;
    std::vector<Tuple> order;
    std::unordered_set<Tuple, TupleHash> live;
  };
  std::map<std::string, Work> touched;
  auto materialize = [&](const std::string& name) -> Work& {
    auto it = touched.find(name);
    if (it != touched.end()) return it->second;
    Work w;
    const auto rel = v->relations_.find(name)->second;
    w.arity = rel->arity();
    w.order.reserve(rel->size());
    for (const Tuple& t : rel->TuplesUnchecked()) {
      w.order.push_back(t);
      w.live.insert(t);
    }
    return touched.emplace(name, std::move(w)).first->second;
  };

  for (const BoundOp& op : bound) {
    switch (op.kind) {
      case UpdateOpKind::kCreateRelation: {
        Work fresh;
        fresh.arity = op.arity;
        touched[op.relation] = std::move(fresh);
        v->relations_.erase(op.relation);
        break;
      }
      case UpdateOpKind::kDropRelation:
        touched.erase(op.relation);
        v->relations_.erase(op.relation);
        break;
      case UpdateOpKind::kInsert: {
        Work& w = materialize(op.relation);
        if (w.live.insert(op.tuple).second) w.order.push_back(op.tuple);
        break;
      }
      case UpdateOpKind::kDelete: {
        Work& w = materialize(op.relation);
        w.live.erase(op.tuple);
        break;
      }
    }
  }

  for (auto& [name, w] : touched) {
    auto rel = std::make_shared<Relation>(name, w.arity, nullptr);
    for (const Tuple& t : w.order) {
      if (w.live.count(t) > 0) rel->Insert(t);
    }
    v->relations_[name] = std::move(rel);
  }
  v->approx_bytes_ = VersionApproxBytes(v->relations_);
  return v;
}

std::string VersionedStore::SerializeBatch(uint64_t seq,
                                           const UpdateBatch& batch) {
  std::string out = StringPrintf("seq\t%llu\n",
                                 static_cast<unsigned long long>(seq));
  for (const UpdateOp& op : batch.ops) {
    out += OpKeyword(op.kind);
    out.push_back('\t');
    out += EscapeField(op.relation);
    if (op.kind == UpdateOpKind::kCreateRelation) {
      out += StringPrintf("\t%u", op.arity);
    } else if (op.kind != UpdateOpKind::kDropRelation) {
      for (const std::string& f : op.fields) {
        out.push_back('\t');
        out += EscapeField(f);
      }
    }
    out.push_back('\n');
  }
  return out;
}

Status VersionedStore::ParseBatchPayload(const std::string& payload,
                                         uint64_t* seq, UpdateBatch* batch) {
  batch->ops.clear();
  std::vector<std::string> lines = Split(payload, '\n');
  // Split preserves the empty field after the trailing '\n'.
  if (!lines.empty() && lines.back().empty()) lines.pop_back();
  if (lines.empty()) return Status::DataLoss("wal batch: empty payload");

  std::vector<std::string> head = Split(lines[0], '\t');
  if (head.size() != 2 || head[0] != "seq" || !ParseUint64(head[1], seq)) {
    return Status::DataLoss("wal batch: bad sequence line '" + lines[0] +
                            "'");
  }
  for (size_t i = 1; i < lines.size(); ++i) {
    std::vector<std::string> parts = Split(lines[i], '\t');
    if (parts.size() < 2) {
      return Status::DataLoss("wal batch: bad op line '" + lines[i] + "'");
    }
    UpdateOp op;
    std::string keyword = parts[0];
    if (!UnescapeField(parts[1], &op.relation)) {
      return Status::DataLoss("wal batch: bad relation escape");
    }
    if (keyword == "create") {
      uint64_t arity;
      if (parts.size() != 3 || !ParseUint64(parts[2], &arity)) {
        return Status::DataLoss("wal batch: bad create line");
      }
      op.kind = UpdateOpKind::kCreateRelation;
      op.arity = static_cast<uint32_t>(arity);
    } else if (keyword == "drop") {
      if (parts.size() != 2) return Status::DataLoss("wal batch: bad drop");
      op.kind = UpdateOpKind::kDropRelation;
    } else if (keyword == "insert" || keyword == "delete") {
      op.kind = keyword == "insert" ? UpdateOpKind::kInsert
                                    : UpdateOpKind::kDelete;
      for (size_t f = 2; f < parts.size(); ++f) {
        std::string field;
        if (!UnescapeField(parts[f], &field)) {
          return Status::DataLoss("wal batch: bad field escape");
        }
        op.fields.push_back(std::move(field));
      }
    } else {
      return Status::DataLoss("wal batch: unknown op '" + keyword + "'");
    }
    batch->ops.push_back(std::move(op));
  }
  return Status::OK();
}

Result<uint64_t> VersionedStore::Commit(const UpdateBatch& batch) {
  util::MutexLock commit_lock(commit_mu_);
  if (durable() && wal_ == nullptr) {
    return Status::Internal(
        "VersionedStore::Recover() must run before Commit on a durable "
        "store");
  }
  std::shared_ptr<const EdbVersion> base = Pin();
  std::vector<BoundOp> bound;
  MCM_RETURN_NOT_OK(ValidateAndBind(batch, *base, &bound));

  uint64_t epoch = base->epoch() + 1;
  if (durable()) {
    // Durability point: the tip only moves once the record is on disk.
    MCM_RETURN_NOT_OK(wal_->AppendRecord(SerializeBatch(epoch, batch)));
  }
  SetTip(BuildVersion(*base, bound, epoch));
  return epoch;
}

std::string VersionedStore::SerializeCheckpoint(const EdbVersion& tip) const {
  std::string out = StringPrintf(
      "mcmckpt\t1\nepoch\t%llu\n",
      static_cast<unsigned long long>(tip.epoch()));
  // Snapshot the interning table up to its current size: every id a stored
  // Value can reference is below it, and replayed ids line up because
  // recovery re-interns in the same order.
  size_t symbol_count = symbols_.size();
  out += StringPrintf("symbols\t%zu\n", symbol_count);
  for (size_t i = 0; i < symbol_count; ++i) {
    out += EscapeField(symbols_.Resolve(static_cast<Value>(i)));
    out.push_back('\n');
  }
  for (const auto& [name, rel] : tip.relations_) {
    out += StringPrintf("relation\t%s\t%u\t%zu\n", EscapeField(name).c_str(),
                        rel->arity(), rel->size());
    for (const Tuple& t : rel->TuplesUnchecked()) {
      for (uint32_t c = 0; c < t.arity(); ++c) {
        if (c > 0) out.push_back('\t');
        out += std::to_string(t[c]);
      }
      out.push_back('\n');
    }
  }
  out += StringPrintf("end\t%u\n", util::Crc32(out));
  return out;
}

Result<std::shared_ptr<const EdbVersion>> VersionedStore::LoadCheckpoint(
    const std::string& content) {
  auto corrupt = [](const std::string& why) {
    return Status::DataLoss("checkpoint corrupt: " + why);
  };
  std::vector<std::string> lines = Split(content, '\n');
  if (!lines.empty() && lines.back().empty()) lines.pop_back();
  if (lines.size() < 4) return corrupt("too short");

  // The trailing "end <crc>" line covers every byte before it.
  std::vector<std::string> end = Split(lines.back(), '\t');
  uint64_t crc;
  if (end.size() != 2 || end[0] != "end" || !ParseUint64(end[1], &crc)) {
    return corrupt("missing end marker");
  }
  size_t body_bytes = content.rfind("end\t");
  if (body_bytes == std::string::npos ||
      util::Crc32(std::string_view(content).substr(0, body_bytes)) != crc) {
    return corrupt("checksum mismatch");
  }

  size_t i = 0;
  if (lines[i++] != "mcmckpt\t1") return corrupt("bad magic");
  std::vector<std::string> epoch_line = Split(lines[i++], '\t');
  uint64_t epoch;
  if (epoch_line.size() != 2 || epoch_line[0] != "epoch" ||
      !ParseUint64(epoch_line[1], &epoch)) {
    return corrupt("bad epoch line");
  }
  std::vector<std::string> sym_line = Split(lines[i++], '\t');
  uint64_t symbol_count;
  if (sym_line.size() != 2 || sym_line[0] != "symbols" ||
      !ParseUint64(sym_line[1], &symbol_count)) {
    return corrupt("bad symbols line");
  }
  if (lines.size() - i < symbol_count) return corrupt("symbol list torn");
  for (uint64_t s = 0; s < symbol_count; ++s) {
    std::string sym;
    if (!UnescapeField(lines[i++], &sym)) return corrupt("bad symbol escape");
    if (symbols_.Intern(sym) != static_cast<Value>(s)) {
      return corrupt("duplicate symbol (id mismatch on re-intern)");
    }
  }

  auto v = std::shared_ptr<EdbVersion>(new EdbVersion());
  v->epoch_ = epoch;
  while (i < lines.size() - 1) {  // everything before the end line
    std::vector<std::string> rel_line = Split(lines[i++], '\t');
    uint64_t arity, count;
    std::string name;
    if (rel_line.size() != 4 || rel_line[0] != "relation" ||
        !UnescapeField(rel_line[1], &name) ||
        !ParseUint64(rel_line[2], &arity) ||
        !ParseUint64(rel_line[3], &count) || arity == 0 ||
        arity > kMaxTupleArity) {
      return corrupt("bad relation header");
    }
    if (lines.size() - 1 - i < count) return corrupt("tuple list torn");
    auto rel = std::make_shared<Relation>(
        name, static_cast<uint32_t>(arity), nullptr);
    for (uint64_t t = 0; t < count; ++t) {
      std::vector<std::string> vals = Split(lines[i++], '\t');
      if (vals.size() != arity) return corrupt("bad tuple width");
      Tuple tuple(static_cast<uint32_t>(arity));
      for (uint32_t c = 0; c < arity; ++c) {
        int64_t value;
        if (!ParseInt64(vals[c], &value)) return corrupt("bad tuple value");
        tuple[c] = value;
      }
      rel->Insert(tuple);
    }
    if (v->relations_.count(name) > 0) return corrupt("duplicate relation");
    v->relations_[name] = std::move(rel);
  }
  v->approx_bytes_ = VersionApproxBytes(v->relations_);
  return std::shared_ptr<const EdbVersion>(std::move(v));
}

Status VersionedStore::Checkpoint() {
  util::MutexLock commit_lock(commit_mu_);
  if (!durable()) {
    return Status::InvalidArgument(
        "in-memory store (no Options::dir) has nothing to checkpoint");
  }
  if (wal_ == nullptr) {
    return Status::Internal("Recover() must run before Checkpoint()");
  }
  std::shared_ptr<const EdbVersion> tip = Pin();
  MCM_FAULT_POINT("store/checkpoint");
  MCM_RETURN_NOT_OK(
      WriteFileAtomic(CheckpointPath(), SerializeCheckpoint(*tip)));

  // Retain the outgoing segment as wal.prev.log so a replication shipper
  // can serve record-based catch-up to a follower at most one rotation
  // behind. A *copy*, not a rename: recovery never reads the retained
  // segment, so a failure here cannot change recovery semantics — it only
  // downgrades a lagging follower from record catch-up to a snapshot
  // reseed, which is why the status is advisory.
  {
    std::string old_wal;
    Status retain = ReadFileToString(WalPath(), &old_wal);
    if (retain.ok()) retain = WriteFileAtomic(WalPrevPath(), old_wal);
    (void)retain;
  }

  // Rotate the log. On failure the previous log stays open and keeps
  // absorbing commits; replay filters records at or below the checkpoint
  // epoch, so both outcomes recover consistently.
  auto rotated = WalWriter::Create(WalPath(), tip->epoch());
  if (!rotated.ok()) {
    return Status(rotated.status().code(),
                  "checkpoint written but wal rotation failed: " +
                      rotated.status().message());
  }
  wal_ = std::move(*rotated);
  return Status::OK();
}

Status VersionedStore::Recover() {
  util::MutexLock commit_lock(commit_mu_);
  if (recovered_) {
    return Status::Internal("Recover() may only be called once");
  }
  recovered_ = true;
  if (!durable()) return Status::OK();

  std::error_code ec;
  std::filesystem::create_directories(options_.dir, ec);
  if (ec) {
    return Status::Internal("cannot create store dir '" + options_.dir +
                            "': " + ec.message());
  }

  // 1. Base state: the last durable checkpoint, or empty at epoch 0.
  Status overall = Status::OK();
  std::shared_ptr<const EdbVersion> cur(new EdbVersion());
  std::string ckpt_bytes;
  Status ckpt_read = ReadFileToString(CheckpointPath(), &ckpt_bytes);
  if (ckpt_read.ok()) {
    auto loaded = LoadCheckpoint(ckpt_bytes);
    if (loaded.ok()) {
      cur = *loaded;
    } else {
      overall = loaded.status();
    }
  } else if (!ckpt_read.IsNotFound()) {
    return ckpt_read;
  }

  // 2. Replay the WAL past the base epoch, stopping at the first torn,
  //    corrupt, or out-of-sequence record.
  WalReplayResult replay = ReplayWal(WalPath());
  uint64_t append_at = replay.valid_bytes;
  bool log_unusable = false;
  if (replay.status.IsNotFound()) {
    log_unusable = true;  // fresh store: start a new log at the base epoch
  } else if (replay.records.empty() && replay.status.IsDataLoss() &&
             replay.valid_bytes == 0) {
    // Mangled header: nothing in the file can be trusted.
    overall = replay.status;
    log_unusable = true;
  } else {
    if (replay.base_epoch > cur->epoch()) {
      // The log continues a checkpoint newer than the one we loaded (lost
      // or corrupt): its records cannot bridge the gap.
      if (overall.ok()) {
        overall = Status::DataLoss(StringPrintf(
            "wal continues epoch %llu but recovered base is epoch %llu",
            static_cast<unsigned long long>(replay.base_epoch),
            static_cast<unsigned long long>(cur->epoch())));
      }
      log_unusable = true;
    } else {
      for (const WalRecord& record : replay.records) {
        uint64_t seq = 0;
        UpdateBatch batch;
        Status parsed = ParseBatchPayload(record.payload, &seq, &batch);
        if (parsed.ok() && seq <= cur->epoch()) continue;  // pre-checkpoint
        std::vector<BoundOp> bound;
        if (parsed.ok() && seq != cur->epoch() + 1) {
          parsed = Status::DataLoss(StringPrintf(
              "wal sequence gap: expected %llu, found %llu",
              static_cast<unsigned long long>(cur->epoch() + 1),
              static_cast<unsigned long long>(seq)));
        }
        if (parsed.ok()) parsed = ValidateAndBind(batch, *cur, &bound);
        if (!parsed.ok()) {
          // A record that passed its CRC but does not apply cleanly is
          // corruption all the same: truncate here, keep the prefix.
          overall = Status::DataLoss("wal replay stopped at offset " +
                                     std::to_string(record.offset) + ": " +
                                     parsed.ToString());
          append_at = record.offset;
          break;
        }
        cur = BuildVersion(*cur, bound, seq);
      }
      if (overall.ok() && replay.status.IsDataLoss()) {
        overall = replay.status;  // torn tail past the replayed records
      }
    }
  }

  // 3. Reposition the log for appending (truncating any lost tail), or
  //    start a fresh one when the old log cannot be trusted at all.
  if (log_unusable) {
    auto w = WalWriter::Create(WalPath(), cur->epoch());
    if (!w.ok()) return w.status();
    wal_ = std::move(*w);
  } else {
    auto w = WalWriter::OpenForAppend(WalPath(), append_at);
    if (!w.ok()) return w.status();
    wal_ = std::move(*w);
  }

  SetTip(std::move(cur));
  return overall;
}

Result<uint64_t> VersionedStore::ApplyReplicated(const std::string& payload) {
  util::MutexLock commit_lock(commit_mu_);
  if (!recovered_) {
    return Status::Internal(
        "VersionedStore::Recover() must run before ApplyReplicated");
  }
  MCM_FAULT_POINT("repl/apply");

  uint64_t seq = 0;
  UpdateBatch batch;
  MCM_RETURN_NOT_OK(ParseBatchPayload(payload, &seq, &batch));

  std::shared_ptr<const EdbVersion> base = Pin();
  if (seq <= base->epoch()) {
    // Redelivery after a shipper restart: the batch is already part of this
    // store's history, so acknowledging it again is harmless.
    return base->epoch();
  }
  if (seq != base->epoch() + 1) {
    return Status::DataLoss(StringPrintf(
        "replication sequence gap: follower at epoch %llu, stream delivered "
        "%llu",
        static_cast<unsigned long long>(base->epoch()),
        static_cast<unsigned long long>(seq)));
  }
  std::vector<BoundOp> bound;
  Status valid = ValidateAndBind(batch, *base, &bound);
  if (!valid.ok()) {
    // A CRC-clean record that does not apply means the stream diverged from
    // the primary's history — corruption, not a caller error.
    return Status::DataLoss(StringPrintf(
        "replicated record %llu does not apply: %s",
        static_cast<unsigned long long>(seq), valid.ToString().c_str()));
  }
  if (durable()) {
    // Re-log the exact shipped bytes before the tip moves: an acknowledged
    // apply must survive a follower crash, same discipline as Commit.
    MCM_RETURN_NOT_OK(wal_->AppendRecord(payload));
  }
  SetTip(BuildVersion(*base, bound, seq));
  return seq;
}

Result<uint64_t> VersionedStore::InstallSnapshot(
    const std::string& checkpoint_bytes) {
  util::MutexLock commit_lock(commit_mu_);
  if (!recovered_) {
    return Status::Internal(
        "VersionedStore::Recover() must run before InstallSnapshot");
  }
  std::shared_ptr<const EdbVersion> base = Pin();
  if (base->epoch() != 0 || symbols_.size() != 0) {
    // Checkpoint symbol ids only line up on a fresh interning table; there
    // is no remap (a non-negative Value could be either a symbol id or an
    // integer literal), so the only safe path is a full reseed.
    return Status::FailedPrecondition(StringPrintf(
        "InstallSnapshot requires a fresh store (epoch 0, empty symbol "
        "table); this store is at epoch %llu with %zu symbols — reseed "
        "required",
        static_cast<unsigned long long>(base->epoch()), symbols_.size()));
  }
  MCM_FAULT_POINT("repl/install");
  // A failed load can leave symbols partially interned — the store is then
  // no longer fresh and the caller must reseed, which LoadCheckpoint's
  // kDataLoss (and the precondition above on any retry) makes explicit.
  auto loaded = LoadCheckpoint(checkpoint_bytes);
  if (!loaded.ok()) return loaded.status();
  uint64_t epoch = (*loaded)->epoch();

  if (durable()) {
    // Persist the image and restart the log at the snapshot epoch so a
    // follower crash after an acked install recovers to this same state.
    MCM_RETURN_NOT_OK(WriteFileAtomic(CheckpointPath(), checkpoint_bytes));
    auto w = WalWriter::Create(WalPath(), epoch);
    if (!w.ok()) return w.status();
    wal_ = std::move(*w);
  }
  SetTip(std::move(*loaded));
  return epoch;
}

Result<uint64_t> VersionedStore::BootstrapFromDatabase(const Database& db) {
  UpdateBatch batch;
  std::vector<std::string> names = db.RelationNames();
  std::sort(names.begin(), names.end());
  for (const std::string& name : names) {
    const Relation* rel = db.Find(name);
    batch.CreateRelation(name, rel->arity());
    for (const Tuple& t : rel->TuplesUnchecked()) {
      std::vector<std::string> fields;
      fields.reserve(rel->arity());
      for (uint32_t c = 0; c < rel->arity(); ++c) {
        fields.push_back(db.symbols().Contains(t[c])
                             ? db.symbols().Resolve(t[c])
                             : std::to_string(t[c]));
      }
      batch.Insert(name, std::move(fields));
    }
  }
  return Commit(batch);
}

}  // namespace mcm
