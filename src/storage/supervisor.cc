#include "storage/supervisor.h"

#include <algorithm>
#include <utility>

#include "util/string_util.h"

namespace mcm {

namespace {

/// Per-slot deterministic seed for the shared backoff jitter stream.
uint64_t SlotSeed(uint64_t base, const std::string& name) {
  // FNV-1a over the name, folded into the configured seed: stable across
  // runs and platforms (std::hash is neither).
  uint64_t h = 1469598103934665603ULL;
  for (char c : name) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ULL;
  }
  return base ^ h;
}

}  // namespace

// ---------------------------------------------------------------------------
// ShipperReplicaChannel

ShipperReplicaChannel::ShipperReplicaChannel(Options options)
    : options_(std::move(options)),
      follower_(options_.replica, options_.source.get()) {
  if (!options_.ship.dir.empty() && options_.sink != nullptr) {
    shipper_ =
        std::make_unique<WalShipper>(options_.ship, options_.sink.get());
  }
}

Status ShipperReplicaChannel::Sync() {
  if (shipper_ != nullptr) {
    // Ship from the follower's applied epoch, not the shipper's own cursor:
    // after a channel rebuild the shipper starts at zero, but the follower
    // (seeded from its store tip) knows where the stream really is.
    uint64_t from = std::max(shipper_->shipped_epoch(),
                             follower_.health().applied_epoch);
    MCM_RETURN_NOT_OK(shipper_->Pump(from));
  }
  return follower_.Poll();
}

// ---------------------------------------------------------------------------
// ReplicaSupervisor

ReplicaSupervisor::ReplicaSupervisor(SupervisorOptions options)
    : options_(std::move(options)) {}

SupervisorOptions::Clock::time_point ReplicaSupervisor::Now() const {
  return options_.now ? options_.now() : SupervisorOptions::Clock::now();
}

Status ReplicaSupervisor::AddReplica(std::string name,
                                     ChannelFactory factory) {
  if (name.empty()) {
    return Status::InvalidArgument("replica name must be non-empty");
  }
  if (factory == nullptr) {
    return Status::InvalidArgument("replica channel factory must be set");
  }
  util::MutexLock lock(mu_);
  for (const Slot& s : slots_) {
    if (s.name == name) {
      return Status::InvalidArgument(
          StringPrintf("replica '%s' already registered", name.c_str()));
    }
  }
  Slot slot;
  slot.name = std::move(name);
  slot.factory = std::move(factory);
  slot.jitter.Seed(SlotSeed(options_.jitter_seed, slot.name));
  slots_.push_back(std::move(slot));
  return Status::OK();
}

void ReplicaSupervisor::ScheduleProbe(Slot& slot, uint64_t delay_ms) {
  slot.next_probe = Now() + std::chrono::milliseconds(delay_ms);
  slot.probe_scheduled = true;
}

void ReplicaSupervisor::ObserveHealth(Slot& slot) {
  if (slot.channel == nullptr) return;
  Follower::Health h = slot.channel->health();
  // Watermarks only ever rise: a commit the primary once advertised as
  // acked stays in fleet_tip across any number of channel rebuilds — this
  // is what FailOverLocked measures candidates against.
  slot.fleet_tip = std::max(slot.fleet_tip, h.primary_tip_epoch);
  slot.last_applied = std::max(slot.last_applied, h.applied_epoch);
}

void ReplicaSupervisor::RunSlot(Slot& slot) {
  if (slot.phase == SlotPhase::kPromoted || slot.phase == SlotPhase::kHalted) {
    return;
  }
  if (slot.probe_scheduled && Now() < slot.next_probe) return;

  const uint64_t seed = SlotSeed(options_.jitter_seed, slot.name);

  if (slot.channel == nullptr) {
    Result<std::unique_ptr<ReplicaChannel>> built =
        slot.factory(slot.reseed_pending);
    if (!built.ok()) {
      slot.last_error = built.status();
      slot.phase = SlotPhase::kBackoff;
      ScheduleProbe(slot,
                    options_.transient.NextDelay(slot.backoff_attempt++, seed));
      return;
    }
    slot.channel = std::move(*built);
    slot.reseed_pending = false;
    ++slot.reconnects;
  }

  Status synced = slot.channel->Sync();
  ObserveHealth(slot);

  if (synced.ok()) {
    slot.phase = SlotPhase::kStreaming;
    slot.consecutive_failures = 0;
    slot.backoff_attempt = 0;
    slot.in_outage = false;
    slot.last_error = Status::OK();
    // Jittered healthy cadence: gap in [interval*(1-jitter), interval].
    uint64_t interval = std::max<uint64_t>(options_.probe_interval_ms, 1);
    double j = std::clamp(options_.probe_jitter, 0.0, 1.0);
    uint64_t gap = interval - static_cast<uint64_t>(
                                  static_cast<double>(interval) * j *
                                  slot.jitter.NextDouble());
    ScheduleProbe(slot, std::max<uint64_t>(gap, 1));
    return;
  }

  slot.last_error = synced;
  if (synced.IsDataLoss() || synced.IsFailedPrecondition()) {
    // A verdict about the data, not the network: this incarnation of the
    // replica can never catch up. Tear the channel down and rebuild from a
    // fresh seed (the factory wipes the store when reseed is set).
    ++slot.reseeds;
    ++stats_.reseeds;
    slot.channel.reset();
    slot.reseed_pending = true;
    slot.phase = SlotPhase::kConnecting;
    slot.consecutive_failures = 0;
    ScheduleProbe(slot,
                  options_.transient.NextDelay(slot.backoff_attempt++, seed));
    return;
  }

  // Transient: tolerate a few in place (the frame retry stash handles
  // them), then declare an outage, drop the transport, and back off.
  ++slot.consecutive_failures;
  if (slot.consecutive_failures >= options_.reconnect_after_failures) {
    if (!slot.in_outage) {
      slot.in_outage = true;
      ++slot.flaps;
      ++stats_.flaps;
    }
    slot.channel.reset();
    slot.phase = SlotPhase::kBackoff;
    ScheduleProbe(slot,
                  options_.transient.NextDelay(slot.backoff_attempt++, seed));
  } else {
    ScheduleProbe(slot, std::max<uint64_t>(options_.probe_interval_ms, 1));
  }
}

Status ReplicaSupervisor::Tick() {
  util::MutexLock lock(mu_);
  ++stats_.probes;
  for (Slot& slot : slots_) RunSlot(slot);

  if (options_.primary_alive != nullptr && !stats_.failed_over) {
    if (options_.primary_alive()) {
      dead_primary_probes_ = 0;
    } else {
      ++dead_primary_probes_;
      if (options_.auto_failover &&
          dead_primary_probes_ >= options_.primary_death_probes) {
        // A refused or failed failover is not fatal to supervision: a
        // candidate may still be draining its stream, so keep the probe
        // count saturated and retry on the next Tick.
        Status attempted = FailOverLocked();
        if (!attempted.ok()) {
          dead_primary_probes_ = options_.primary_death_probes;
        }
      }
    }
  }
  return Status::OK();
}

Status ReplicaSupervisor::FailOver() {
  util::MutexLock lock(mu_);
  return FailOverLocked();
}

Status ReplicaSupervisor::FailOverLocked() {
  if (stats_.failed_over) return Status::OK();

  // Final drain: bytes already in flight must count toward a candidate's
  // applied epoch before election, or a replica that merely lagged by one
  // Poll would be rejected (or worse, outvoted by a staler peer).
  uint64_t fleet_tip = 0;
  for (Slot& slot : slots_) {
    if (slot.channel != nullptr && slot.phase != SlotPhase::kHalted) {
      Status drained = slot.channel->Sync();
      if (!drained.ok()) slot.last_error = drained;
      ObserveHealth(slot);
    }
    fleet_tip = std::max(fleet_tip, slot.fleet_tip);
  }

  Slot* best = nullptr;
  uint64_t best_applied = 0;
  for (Slot& slot : slots_) {
    if (slot.channel == nullptr) continue;
    if (slot.phase == SlotPhase::kHalted ||
        slot.phase == SlotPhase::kPromoted) {
      continue;
    }
    Follower::Health h = slot.channel->health();
    if (!h.halt.ok()) continue;  // sticky-halted: not a viable authority
    if (best == nullptr || h.applied_epoch > best_applied) {
      best = &slot;
      best_applied = h.applied_epoch;
    }
  }
  if (best == nullptr) {
    return Status::Unavailable(
        "failover impossible: no live, unhalted replica to promote");
  }
  if (best_applied < fleet_tip) {
    return Status::DataLoss(StringPrintf(
        "failover refused: best candidate '%s' applied epoch %llu but the "
        "fleet observed the primary acknowledge epoch %llu — promotion "
        "would lose acked commits",
        best->name.c_str(), static_cast<unsigned long long>(best_applied),
        static_cast<unsigned long long>(fleet_tip)));
  }

  Status promoted = best->channel->Promote();
  if (!promoted.ok()) {
    best->last_error = promoted;
    return promoted;
  }
  best->phase = SlotPhase::kPromoted;
  promoted_ = best->name;
  stats_.failed_over = true;
  ++stats_.failovers;
  for (Slot& slot : slots_) {
    if (&slot == best) continue;
    // Exactly one authority: every other slot stops consuming for good.
    slot.phase = SlotPhase::kHalted;
    slot.channel.reset();
  }
  return Status::OK();
}

std::vector<ReplicaSupervisor::SlotStatus> ReplicaSupervisor::slots() const {
  util::MutexLock lock(mu_);
  std::vector<SlotStatus> out;
  out.reserve(slots_.size());
  for (const Slot& slot : slots_) {
    SlotStatus st;
    st.name = slot.name;
    st.phase = slot.phase;
    if (slot.channel != nullptr) st.health = slot.channel->health();
    st.fleet_tip_epoch = slot.fleet_tip;
    st.consecutive_failures = slot.consecutive_failures;
    st.reconnects = slot.reconnects;
    st.reseeds = slot.reseeds;
    st.flaps = slot.flaps;
    st.last_error = slot.last_error;
    out.push_back(std::move(st));
  }
  return out;
}

ReplicaSupervisor::Stats ReplicaSupervisor::stats() const {
  util::MutexLock lock(mu_);
  Stats s = stats_;
  for (const Slot& slot : slots_) {
    if (slot.phase == SlotPhase::kHalted) continue;
    uint64_t applied = slot.last_applied;
    uint64_t tip = slot.fleet_tip;
    if (slot.channel != nullptr) {
      Follower::Health h = slot.channel->health();
      applied = std::max(applied, h.applied_epoch);
      tip = std::max(tip, h.primary_tip_epoch);
    }
    if (tip > applied) {
      s.max_lag_epochs = std::max(s.max_lag_epochs, tip - applied);
    }
  }
  return s;
}

std::string ReplicaSupervisor::promoted() const {
  util::MutexLock lock(mu_);
  return promoted_;
}

}  // namespace mcm
