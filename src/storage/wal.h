// Write-ahead log: length-prefixed, CRC32-checksummed records with
// fsync-on-commit durability.
//
// File layout (all integers little-endian):
//
//   header:  "MCMWAL01" (8 bytes)  | base_epoch (u64)
//   record:  payload_len (u32) | crc32(payload) (u32) | payload bytes
//
// The base epoch names the checkpoint this log continues from: replay
// applies only records whose batch sequence exceeds it. Appends are atomic
// at the commit level: AppendRecord either leaves the record fully written
// and fsynced, or truncates the file back to the pre-append offset — a
// failed append never poisons the log for later commits. Torn tails (a
// crash mid-write, or bytes lost below the page cache) are detected on
// replay by the length prefix and checksum; ReplayWal stops at the first
// invalid record and reports the valid prefix with Status kDataLoss.
//
// Fault-injection sites: "wal/create" (log creation/rotation), "wal/append"
// (before the record bytes are written), "wal/fsync" (record written, not
// yet durable — the classic crash-before-commit window).
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "util/status.h"

namespace mcm {

/// One framed record recovered from a WAL scan.
struct WalRecord {
  uint64_t offset = 0;  ///< file offset of the record's length prefix
  std::string payload;
};

/// Outcome of scanning a WAL file: every valid record in order, plus where
/// (and whether) the valid prefix ends.
struct WalReplayResult {
  uint64_t base_epoch = 0;         ///< from the header
  std::vector<WalRecord> records;  ///< valid records, file order
  uint64_t valid_bytes = 0;  ///< offset just past the last valid record
  /// OK when the file ends exactly at a record boundary; kDataLoss when a
  /// torn or corrupt record cut the scan short (payloads/valid_bytes then
  /// describe the consistent prefix).
  Status status;
};

/// Scan and validate the WAL at `path`. A missing file is NotFound; a
/// mangled header is kDataLoss with no payloads.
WalReplayResult ReplayWal(const std::string& path);

/// \brief Single-writer append handle for a WAL file.
///
/// Not internally synchronized: the versioned store serializes all writers
/// under its commit lock. That single-writer discipline is enforced at the
/// call sites rather than here — VersionedStore holds its WalWriter in a
/// member annotated MCM_GUARDED_BY(commit_mu_) / MCM_PT_GUARDED_BY(
/// commit_mu_), so under -DMCM_THREAD_SAFETY=ON any Append/Checkpoint path
/// that touches the writer without the commit lock fails to compile (see
/// tests/threadsafety/ts_fail_wal_unlocked.cc). Embedders adding a second
/// WalWriter call site must guard it the same way.
class WalWriter {
 public:
  ~WalWriter();
  WalWriter(const WalWriter&) = delete;
  WalWriter& operator=(const WalWriter&) = delete;

  /// Create a fresh log at `path` (atomically replacing any existing file)
  /// whose header carries `base_epoch`. This is also checkpoint rotation:
  /// the new log is written to a temp file and renamed into place, so a
  /// crash mid-rotation leaves the previous log intact.
  [[nodiscard]] static Result<std::unique_ptr<WalWriter>> Create(
      const std::string& path, uint64_t base_epoch);

  /// Open an existing log for appending after its valid prefix. `offset`
  /// must come from ReplayWal::valid_bytes; any trailing garbage past it is
  /// truncated away here so subsequent appends extend a clean log.
  [[nodiscard]] static Result<std::unique_ptr<WalWriter>> OpenForAppend(
      const std::string& path, uint64_t offset);

  /// Append one framed record and fsync it. On any failure the file is
  /// truncated back to the pre-append offset; if even the truncate fails
  /// the writer turns sticky-broken and every later append reports it.
  [[nodiscard]] Status AppendRecord(std::string_view payload);

  uint64_t offset() const { return offset_; }
  const std::string& path() const { return path_; }

 private:
  WalWriter(int fd, std::string path, uint64_t offset)
      : fd_(fd), path_(std::move(path)), offset_(offset) {}

  int fd_ = -1;
  std::string path_;
  uint64_t offset_ = 0;
  Status broken_;  ///< sticky failure once the file state is unknown
};

}  // namespace mcm
