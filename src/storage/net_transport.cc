#include "storage/net_transport.h"

#include <algorithm>

#include "util/fault_injection.h"
#include "util/string_util.h"

namespace mcm {

Status SocketSink::Write(std::string_view bytes) {
  MCM_FAULT_POINT("net/write");
  if (poisoned_) {
    return Status::Unavailable(
        "socket sink poisoned by an earlier partial write; reconnect");
  }
  Status st = socket_.WriteAll(bytes, options_.write_timeout_ms);
  if (!st.ok()) poisoned_ = true;
  return st;
}

Result<std::string> SocketSource::Read(size_t max_bytes) {
  MCM_FAULT_POINT("net/read");
  return socket_.ReadSome(max_bytes, options_.read_timeout_ms);
}

Status FaultyTransport::Write(std::string_view bytes) {
  MCM_FAULT_POINT("net/write");
  if (partitioned_.load(std::memory_order_relaxed)) {
    return Status::Unavailable("injected partition: write dropped");
  }
  int64_t budget = write_budget_.load(std::memory_order_relaxed);
  if (budget >= 0) {
    // Deliver the surviving prefix, then die: the peer's decoder sees a
    // torn frame, exactly like a TCP connection reset mid-send.
    size_t deliver =
        std::min<size_t>(static_cast<uint64_t>(budget), bytes.size());
    write_budget_.store(budget - static_cast<int64_t>(deliver),
                        std::memory_order_relaxed);
    if (deliver > 0) {
      Status st = sink_->Write(bytes.substr(0, deliver));
      if (!st.ok()) return st;
    }
    if (deliver < bytes.size()) {
      return Status::Unavailable(StringPrintf(
          "injected short write: %zu of %zu bytes delivered before reset",
          deliver, bytes.size()));
    }
    return Status::OK();
  }
  return sink_->Write(bytes);
}

Result<std::string> FaultyTransport::Read(size_t max_bytes) {
  MCM_FAULT_POINT("net/read");
  if (partitioned_.load(std::memory_order_relaxed)) {
    return Status::Unavailable("injected partition: nothing readable");
  }
  size_t cap = read_chunk_cap_.load(std::memory_order_relaxed);
  if (cap > 0) max_bytes = std::min(max_bytes, cap);
  return source_->Read(max_bytes);
}

}  // namespace mcm
