#include "storage/relation.h"

#include <cassert>
#include <utility>

namespace mcm {

const std::vector<uint32_t> Relation::kEmptyPostings{};

namespace {

std::string EncodeKeyCols(const IndexKey& cols) {
  std::string s;
  s.reserve(cols.size() * 3);
  for (uint32_t c : cols) {
    s += std::to_string(c);
    s += ',';
  }
  return s;
}

}  // namespace

Relation Relation::Borrow(std::shared_ptr<const Relation> base,
                          AccessStats* stats) {
  assert(base != nullptr);
  // Collapse borrow-of-borrow to the root owner so the chain never grows
  // and store() stays one hop.
  while (base->base_ != nullptr) base = base->base_;
  Relation r(base->name_, base->arity_, stats);
  r.base_ = std::move(base);
  return r;
}

void Relation::Materialize() {
  assert(base_ != nullptr);
  // Same tuples, same ids: indexes built over the shared storage remain
  // valid, and the base's dedup set is exactly the one a copy would have
  // rebuilt tuple by tuple.
  tuples_ = base_->tuples_;
  dedup_ = base_->dedup_;
  base_.reset();
}

bool Relation::Insert(const Tuple& t) {
  assert(t.arity() == arity_ && "tuple arity mismatch");
  if (stats_ != nullptr) stats_->insert_attempts++;
  if (base_ != nullptr) {
    // Cheap pre-check against the frozen base before paying for the
    // copy-on-write: re-inserting an existing tuple (the common no-op
    // during fixpoint rounds) must not materialize.
    if (base_->dedup_.count(t) > 0) return false;
    Materialize();
  }
  auto [it, inserted] = dedup_.insert(t);
  (void)it;
  if (!inserted) return false;
  uint32_t id = static_cast<uint32_t>(tuples_.size());
  tuples_.push_back(t);
  if (stats_ != nullptr) stats_->tuples_inserted++;
  // Maintain existing indexes incrementally (relations only ever grow
  // during fixpoint computation, so indexes never need rebuilds).
  for (auto& [enc, index] : indexes_) {
    index.buckets[MakeKey(index.key_cols, t)].push_back(id);
    (void)enc;
  }
  return true;
}

bool Relation::Contains(const Tuple& t) const {
  if (stats_ != nullptr) stats_->probes++;
  // A borrower must not touch the shared base's dedup set (frozen, and the
  // set was built by the base's own inserts) — but its dedup contents are
  // plain immutable data, safe to read from any number of borrowers.
  bool found = (base_ != nullptr ? base_->dedup_ : dedup_).count(t) > 0;
  if (found) CountRead(1);
  return found;
}

const Tuple& Relation::Get(size_t id) const {
  CountRead(1);
  return store().at(id);
}

std::vector<Tuple> Relation::Scan() const {
  if (stats_ != nullptr) stats_->scans++;
  CountRead(store().size());
  return store();
}

Tuple Relation::MakeKey(const IndexKey& cols, const Tuple& t) const {
  Tuple key(static_cast<uint32_t>(cols.size()));
  for (uint32_t i = 0; i < cols.size(); ++i) {
    key[i] = t[cols[i]];
  }
  return key;
}

Relation::Index& Relation::GetOrBuildIndex(const IndexKey& cols) const {
  std::string enc = EncodeKeyCols(cols);
  auto it = indexes_.find(enc);
  if (it != indexes_.end()) return it->second;
  Index& index = indexes_[enc];
  index.key_cols = cols;
  const std::vector<Tuple>& tuples = store();
  for (uint32_t id = 0; id < tuples.size(); ++id) {
    index.buckets[MakeKey(cols, tuples[id])].push_back(id);
  }
  return index;
}

const std::vector<uint32_t>& Relation::Probe(
    const IndexKey& key_cols, const std::vector<Value>& key_vals) const {
  assert(key_cols.size() == key_vals.size());
  if (stats_ != nullptr) stats_->probes++;
  Index& index = GetOrBuildIndex(key_cols);
  Tuple key(static_cast<uint32_t>(key_vals.size()));
  for (uint32_t i = 0; i < key_vals.size(); ++i) key[i] = key_vals[i];
  auto it = index.buckets.find(key);
  if (it == index.buckets.end()) return kEmptyPostings;
  CountRead(it->second.size());
  return it->second;
}

void Relation::Clear() {
  base_.reset();
  tuples_.clear();
  dedup_.clear();
  indexes_.clear();
}

std::vector<Value> Relation::DistinctColumn(uint32_t col) const {
  std::unordered_set<Value> seen;
  std::vector<Value> out;
  for (const Tuple& t : store()) {
    if (seen.insert(t[col]).second) out.push_back(t[col]);
  }
  return out;
}

std::string Relation::ToString(size_t limit) const {
  std::string out = name_ + "[" + std::to_string(arity_) + "] {";
  size_t shown = 0;
  for (const Tuple& t : store()) {
    if (shown >= limit) {
      out += " ...";
      break;
    }
    out += " " + t.ToString();
    ++shown;
  }
  out += " } (" + std::to_string(store().size()) + " tuples)";
  return out;
}

}  // namespace mcm
