// Primary -> follower WAL shipping: warm-standby replication over a
// pluggable byte-stream transport.
//
// Wire protocol. The stream is a sequence of frames, each:
//
//   kind (1 byte) | epoch (u64 LE) | payload_len (u32 LE) | crc32 (u32 LE)
//   | payload bytes
//
// where the CRC covers kind + epoch + payload_len + payload — a bit flip
// anywhere in a frame is detected, not just in its payload. Kinds:
//
//   'T' (tip)      epoch = the primary's durable tip; empty payload. Sent
//                  FIRST on every pump, before the records that reach that
//                  tip: if the stream tears mid-batch the follower still
//                  knows the primary acknowledged epochs it never received,
//                  which is what makes promotion-after-lost-tail detectable
//                  (Follower::Promote).
//   'S' (snapshot) payload = the primary's checkpoint image verbatim;
//                  epoch = the image's epoch. Bootstrap / reseed path.
//   'R' (record)   payload = one WAL record payload verbatim (the exact
//                  bytes the primary fsynced); epoch = its batch sequence.
//
// Epoch/ack rules: a frame's epoch is authoritative only because the CRC
// covers it. The follower applies records strictly in sequence through
// VersionedStore::ApplyReplicated — redelivery (seq <= applied) is a no-op,
// a gap (seq > applied + 1) is kDataLoss, and nothing is ever applied past
// the first error. The primary acks nothing to the follower; the follower's
// applied epoch IS its ack, surfaced via Follower::health() and
// ServiceStats (bounded staleness).
//
// Shipping sources. WalShipper tails the primary's store directory files —
// checkpoint.mcm, wal.log, and the wal.prev.log segment retained by
// Checkpoint() — so it can serve three catch-up shapes: live records from
// wal.log, records across one rotation via wal.prev.log, and a full
// snapshot + records when the follower is further behind than the retained
// segments reach. A snapshot landing on a non-fresh follower store is
// kFailedPrecondition ("reseed required"): the embedder tears the follower
// store down and bootstraps a fresh one (see mcm-serve --follow).
//
// Transport seam. ByteSink/ByteSource is deliberately minimal and
// socket-shaped (write some bytes / read some bytes / end-of-stream), so a
// network front end can slot in without touching shipper or follower
// logic. InProcessPipe is the bundled transport: a mutex-guarded byte
// queue with a clean close and a CloseTorn() that models a connection
// dying mid-frame.
//
// Failure semantics, the headline contract: the follower either matches
// the primary's committed prefix exactly at some epoch, or reports
// kDataLoss — never a half-applied batch, never silent divergence. Torn
// stream mid-frame, CRC-corrupt frame, sequence gap, and promotion with a
// lost acked tail all land on kDataLoss; a lagging follower that outran
// the retained WAL lands on kFailedPrecondition (reseed). Both are sticky:
// once halted, every later Poll/Promote returns the same status. Transient
// transport stalls (kUnavailable) and injected I/O errors are returned
// non-sticky and the offending frame is retried on the next Poll.
//
// Fault-injection sites: "repl/ship" (WalShipper::Pump entry),
// "repl/apply" (VersionedStore::ApplyReplicated entry), "repl/install"
// (VersionedStore::InstallSnapshot, after the freshness check).
//
// Thread safety: WalShipper, FileTailSource, and the Poll/Promote surface
// of Follower are single-threaded (one shipper thread, one apply thread);
// Follower::health() may be called from any thread. Follower::mu_ sits at
// rank 4 and InProcessPipe::mu_ at rank 9 of the lock-order registry
// (util/mutex.h).
#pragma once

#include <chrono>
#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <string_view>

#include "storage/versioned_store.h"
#include "util/lifetime_annotations.h"
#include "util/mutex.h"
#include "util/status.h"
#include "util/thread_annotations.h"

namespace mcm {

inline constexpr char kFrameTip = 'T';
inline constexpr char kFrameSnapshot = 'S';
inline constexpr char kFrameRecord = 'R';
/// kind + epoch + payload_len + crc32.
inline constexpr size_t kFrameHeaderBytes = 1 + 8 + 4 + 4;

/// One decoded replication frame.
struct ReplFrame {
  char kind = 0;
  uint64_t epoch = 0;
  std::string payload;
};

/// Encode one frame (header CRC computed here).
std::string EncodeFrame(char kind, uint64_t epoch, std::string_view payload);

/// \brief Write side of a replication transport (socket-shaped seam).
class ByteSink {
 public:
  virtual ~ByteSink() = default;
  /// Append `bytes` to the stream. kUnavailable when the peer is gone.
  [[nodiscard]] virtual Status Write(std::string_view bytes) = 0;
};

/// \brief Read side of a replication transport (socket-shaped seam).
class ByteSource {
 public:
  virtual ~ByteSource() = default;
  /// Pull up to `max_bytes` from the stream. Outcomes:
  ///   * a non-empty string: bytes, in order, no framing implied;
  ///   * an empty string: the writer closed the stream (end of stream —
  ///     whether it closed *cleanly* is the FrameDecoder's verdict);
  ///   * kUnavailable: nothing buffered right now; retry later.
  [[nodiscard]] virtual Result<std::string> Read(size_t max_bytes) = 0;
};

/// \brief In-process transport: a mutex-guarded byte queue.
///
/// CloseWrite() ends the stream cleanly; CloseTorn(n) first drops the last
/// `n` undelivered bytes, modelling a connection that died mid-frame — the
/// reader sees the surviving prefix and then end-of-stream, exactly like a
/// TCP peer vanishing.
class InProcessPipe : public ByteSink, public ByteSource {
 public:
  [[nodiscard]] Status Write(std::string_view bytes) override
      MCM_EXCLUDES(mu_);
  [[nodiscard]] Result<std::string> Read(size_t max_bytes) override
      MCM_EXCLUDES(mu_);

  void CloseWrite() MCM_EXCLUDES(mu_);
  void CloseTorn(size_t drop_trailing_bytes) MCM_EXCLUDES(mu_);

 private:
  /// Leaf of the lock-order registry (rank 9, util/mutex.h): held only for
  /// queue manipulation, never while any other capability is held by this
  /// class.
  mutable util::Mutex mu_
      MCM_ACQUIRED_AFTER(util::kLockRankFaultInjection,
                         util::kLockRankTransport);
  std::string buf_ MCM_GUARDED_BY(mu_);
  bool closed_ MCM_GUARDED_BY(mu_) = false;
};

/// \brief Incremental frame parser for the follower side.
///
/// Feed() raw bytes in any chunking; Next() pops complete frames. A frame
/// that fails validation (unknown kind, absurd length, CRC mismatch) is
/// kDataLoss. Finish() renders the end-of-stream verdict: OK when the
/// stream ended exactly on a frame boundary, kDataLoss when it tore
/// mid-frame.
class FrameDecoder {
 public:
  void Feed(std::string_view bytes);
  /// nullopt = need more bytes; error = corrupt frame (fatal to the
  /// stream; the decoder does not resynchronize).
  [[nodiscard]] Result<std::optional<ReplFrame>> Next();
  [[nodiscard]] Status Finish() const;
  size_t buffered_bytes() const { return buf_.size() - pos_; }

 private:
  std::string buf_;
  size_t pos_ = 0;
};

/// \brief Primary side: tails the store directory and ships frames.
///
/// Single-threaded; the embedder runs one shipper per follower stream.
class WalShipper {
 public:
  struct Options {
    /// The primary's store directory (wal.log / wal.prev.log /
    /// checkpoint.mcm).
    std::string dir;
    /// Optional acked-tip authority. When set, records beyond
    /// primary->TipEpoch() are never shipped: a live tail can read a
    /// record that is complete on disk but whose fsync then fails and
    /// rolls it back — without the cap such a record could reach the
    /// follower and diverge it from the primary's acknowledged history.
    /// Cross-process embedders that cannot share the store object should
    /// pump only while the primary is quiescent (see DESIGN.md §5h).
    const VersionedStore* primary = nullptr;
  };

  WalShipper(Options options, ByteSink* sink)
      : options_(std::move(options)), sink_(sink) {}

  /// Ship everything needed to bring a follower whose applied epoch is
  /// `from_epoch` up to the primary's durable tip: the 'T' tip frame
  /// first, then records (wal.prev.log chain and/or wal.log), or a
  /// snapshot + records when the retained segments don't reach back to
  /// `from_epoch`. Idempotent: re-shipping overlap is absorbed by the
  /// follower's redelivery no-op.
  [[nodiscard]] Status Pump(uint64_t from_epoch);
  /// Resume from the last epoch this shipper sent (0 before any pump).
  [[nodiscard]] Status Pump() { return Pump(shipped_epoch_); }

  uint64_t shipped_epoch() const { return shipped_epoch_; }

 private:
  Status Send(char kind, uint64_t epoch, std::string_view payload);

  Options options_;
  ByteSink* sink_;
  uint64_t shipped_epoch_ = 0;
};

/// \brief File-tailing ByteSource: frames pumped straight out of a primary's
/// store directory, paced so the apply loop never busy-spins on the files.
///
/// The apply side of same-host replication (mcm-serve --follow) wants the
/// ByteSource shape so the Follower is transport-agnostic, but a naive
/// "pump on every Read" re-reads the WAL in a tight loop whenever the
/// follower polls faster than the primary commits. This source gates
/// directory re-reads to `poll_interval_ms`; a Read between pumps returns
/// kUnavailable immediately (the follower's "nothing new" verdict) instead
/// of touching disk. Pump failures back off exponentially up to
/// `max_backoff_ms`. If the shipped directory disappears after the tail has
/// seen data — primary torn down, volume unmounted — the source keeps
/// backing off until `missing_dir_deadline_ms` has elapsed and then surfaces
/// kDeadlineExceeded, a final verdict the embedder can distinguish from an
/// ordinary stall (kDeadlineExceeded is not transient; see
/// runtime::IsTransient).
///
/// Single-threaded, like the Follower it feeds. The clock is injectable so
/// pacing and the missing-dir deadline are unit-testable without sleeping.
class FileTailSource : public ByteSource {
 public:
  using Clock = std::chrono::steady_clock;

  struct Options {
    /// The primary's store directory to tail.
    std::string dir;
    /// Optional acked-tip authority, forwarded to the internal WalShipper.
    const VersionedStore* primary = nullptr;
    /// Resume point: the follower's applied epoch at attach time.
    uint64_t start_epoch = 0;
    /// Minimum gap between directory re-reads while healthy.
    uint64_t poll_interval_ms = 20;
    /// Cap on the error-backoff gap between re-reads.
    uint64_t max_backoff_ms = 250;
    /// How long the directory may be missing mid-tail before the source
    /// gives up with kDeadlineExceeded.
    uint64_t missing_dir_deadline_ms = 2000;
    /// Injectable clock for tests; defaults to the steady clock.
    std::function<Clock::time_point()> now;
  };

  explicit FileTailSource(Options options);

  /// Buffered frame bytes, or kUnavailable while gated between pumps /
  /// backing off, or kDeadlineExceeded (sticky) once the shipped directory
  /// has been missing past the deadline.
  [[nodiscard]] Result<std::string> Read(size_t max_bytes) override;

  /// Directory re-reads actually performed (pacing observability).
  uint64_t pump_count() const { return pump_count_; }

 private:
  Clock::time_point Now() const;

  Options options_;
  /// Frames land here (same-thread use only; the pipe's lock is idle).
  InProcessPipe buffer_;
  WalShipper shipper_;
  Clock::time_point next_pump_{};
  bool have_next_pump_ = false;
  int consecutive_failures_ = 0;
  uint64_t pump_count_ = 0;
  bool saw_dir_ = false;
  bool dir_missing_ = false;
  Clock::time_point dir_missing_since_{};
  Status halt_;  ///< OK, or the sticky kDeadlineExceeded verdict
};

/// \brief Follower side: decodes frames and applies them to a store.
///
/// Poll() and Promote() belong to one apply thread; health() is
/// thread-safe. Fatal statuses (kDataLoss, kFailedPrecondition) are
/// sticky — the follower halts and every later Poll/Promote repeats the
/// verdict. Transient errors (stalls, injected I/O faults) are returned
/// non-sticky; the in-flight frame is retried on the next Poll.
class MCM_VIEW_OF(VersionedStore) Follower {
 public:
  struct Health {
    uint64_t applied_epoch = 0;      ///< epoch served to readers
    uint64_t primary_tip_epoch = 0;  ///< newest tip the primary advertised
    bool promoted = false;
    Status halt;  ///< OK while streaming; the sticky verdict once halted
    uint64_t lag_epochs() const {
      return primary_tip_epoch > applied_epoch
                 ? primary_tip_epoch - applied_epoch
                 : 0;
    }
  };

  /// A follower over a non-fresh store (channel rebuild after a network
  /// flap, restart of a durable standby) resumes from what the store
  /// already holds: applied and advertised epochs seed from TipEpoch(), so
  /// the first Pump ships the delta instead of the whole history and an
  /// immediately-promoted idle standby is not refused for "lag" it does
  /// not have.
  Follower(VersionedStore* store, ByteSource* source)
      : store_(store), source_(source) {
    health_.applied_epoch = store->TipEpoch();
    health_.primary_tip_epoch = health_.applied_epoch;
  }

  /// Drain available bytes, apply complete frames in order. OK when the
  /// stream is healthy (including "no new bytes"); a transient error when
  /// a frame could not be applied yet (retry); the sticky halt status
  /// after any fatal condition.
  [[nodiscard]] Status Poll() MCM_EXCLUDES(mu_);

  /// Failover: make this follower the new authority. Refuses with sticky
  /// kDataLoss when the primary advertised a tip beyond the applied epoch
  /// — promoting would silently lose commits the old primary acknowledged
  /// to its clients. Idempotent once succeeded.
  [[nodiscard]] Status Promote() MCM_EXCLUDES(mu_);

  Health health() const MCM_EXCLUDES(mu_);

  /// True once the source reported end-of-stream: no more frames will ever
  /// arrive on this connection. A network embedder uses this to decide the
  /// link died cleanly and a fresh connection (and Follower, re-seeded
  /// from the store tip) is needed. Call from the Poll thread only.
  bool stream_ended() const { return eof_; }

 private:
  /// OK, or the reason the frame could not be applied (caller classifies
  /// sticky vs transient).
  Status HandleFrame(const ReplFrame& frame) MCM_EXCLUDES(mu_);
  Status Halt(Status verdict) MCM_EXCLUDES(mu_);

  VersionedStore* store_;
  ByteSource* source_;
  FrameDecoder decoder_;
  /// A frame that failed transiently, awaiting retry before new reads.
  std::optional<ReplFrame> pending_;
  bool eof_ = false;

  /// Rank 4 of the lock-order registry (util/mutex.h): guards health only;
  /// never held across store or transport calls.
  mutable util::Mutex mu_ MCM_ACQUIRED_AFTER(util::kLockRankFollower)
      MCM_ACQUIRED_BEFORE(util::kLockRankStoreCommit);
  Health health_ MCM_GUARDED_BY(mu_);
};

}  // namespace mcm
