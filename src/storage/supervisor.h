// Supervised follower fleet: health probing, reconnect backoff, reseed
// classification, and safe automatic failover over the replication stream.
//
// The replication layer (storage/replication.h) gives one follower strong
// local guarantees — apply-in-order or halt sticky — but says nothing about
// *keeping* N followers alive behind flaky transports, or about who becomes
// primary when the primary dies. ReplicaSupervisor owns that policy layer.
//
// Model. The embedder registers each replica as a ChannelFactory: a
// callable that (re)builds the full channel — transport, follower, and on
// reseed the replica store itself — and hands it back as a ReplicaChannel.
// The supervisor never touches sockets or stores directly; it drives
// channels and decides when to rebuild them. Tick() runs one supervision
// round over every due slot:
//
//            +-------------+   factory ok    +-------------+
//   (start)->| kConnecting |---------------->| kStreaming  |<---+ Sync ok
//            +-------------+                 +-------------+----+
//               ^    ^  | factory failed        |       |
//    backoff    |    |  v                       |       | sticky verdict
//    elapsed    |  +-----------+   N transient  |       | (kDataLoss /
//               +--| kBackoff  |<-- failures ---+       |  kFailedPrecond.)
//                  +-----------+   ("flap")             v
//                                               reseed: drop channel,
//                                               rebuild with reseed=true
//                                               (back to kConnecting)
//
//   kPromoted: terminal winner of a failover. kHalted: terminal loser —
//   after a promotion elsewhere the slot stops syncing so exactly one
//   authority exists.
//
// Failure classification mirrors runtime::IsTransient: kDataLoss and
// kFailedPrecondition are final verdicts about the *data* (torn stream,
// outran the retained WAL) and mean "reseed" — rebuild the replica from a
// fresh snapshot; everything else is a transport flap — keep the store,
// reconnect with capped jittered backoff (runtime::TransientPolicy::
// NextDelay, the same pacing QueryService uses for query retries).
//
// Promotion safety invariant. The supervisor tracks, per slot and across
// channel rebuilds, the highest primary tip epoch the slot ever saw
// acknowledged (the fleet watermark). FailOver() elects the live candidate
// with the highest applied epoch, gives every live candidate a final
// drain Sync first, and REFUSES to promote (kDataLoss) when even the best
// candidate has applied less than the fleet watermark — promoting would
// silently lose commits the old primary acknowledged to clients. On
// success exactly one slot is kPromoted and all others are kHalted.
//
// Primary death detection: `primary_alive` is probed every Tick; after
// `primary_death_probes` consecutive dead probes the supervisor triggers
// FailOver() automatically (when `auto_failover` is set).
//
// Thread safety: all public methods are thread-safe. mu_ sits at rank 3 of
// the lock-order registry (util/mutex.h) — it is held across a channel's
// Sync/Promote, which acquire the follower (rank 4) and store (ranks 5-6)
// locks beneath it. The injected `now` / `primary_alive` callables must not
// call back into the supervisor.
#pragma once

#include <chrono>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "runtime/execution_context.h"
#include "storage/replication.h"
#include "util/mutex.h"
#include "util/rng.h"
#include "util/status.h"
#include "util/thread_annotations.h"

namespace mcm {

/// \brief One supervised replication channel: transport + follower bundled
/// by the embedder, driven by the supervisor.
class ReplicaChannel {
 public:
  virtual ~ReplicaChannel() = default;
  /// Advance replication one round (ship what's new, apply what arrived).
  /// OK = healthy (including "nothing new"); transient errors are flap
  /// material; kDataLoss/kFailedPrecondition demand a reseed.
  [[nodiscard]] virtual Status Sync() = 0;
  /// Current follower health (thread-safe on the follower's side).
  virtual Follower::Health health() const = 0;
  /// Make this replica the authority (Follower::Promote semantics).
  [[nodiscard]] virtual Status Promote() = 0;
};

/// \brief The bundled channel shape: an owned transport pair, an optional
/// in-process shipper (same-host / test topologies), and the follower.
///
/// Sync() pumps the shipper (when present — over a network the primary
/// process pumps on its own side) and then polls the follower. Ownership:
/// the channel owns transport and follower; the replica store stays with
/// the embedder, whose factory decides whether a reseed rebuilds it.
class ShipperReplicaChannel : public ReplicaChannel {
 public:
  struct Options {
    /// Shipper config; `ship.dir` empty = no local shipper (pull-only).
    WalShipper::Options ship;
    /// The replica's store (not owned).
    VersionedStore* replica = nullptr;
    /// Transport the shipper writes into (may be null when `ship.dir` is
    /// empty); owned.
    std::unique_ptr<ByteSink> sink;
    /// Transport the follower reads from; owned.
    std::unique_ptr<ByteSource> source;
  };

  explicit ShipperReplicaChannel(Options options);

  [[nodiscard]] Status Sync() override;
  Follower::Health health() const override { return follower_.health(); }
  [[nodiscard]] Status Promote() override { return follower_.Promote(); }

 private:
  Options options_;
  std::unique_ptr<WalShipper> shipper_;  ///< null when pull-only
  Follower follower_;
};

/// Builds (or rebuilds) a replica's channel. `reseed` is true when the
/// previous incarnation halted with a data verdict: the factory must then
/// discard the replica's store state and start fresh (the stream will
/// bootstrap it via a snapshot frame). Returning an error is fine — the
/// supervisor backs off and retries.
using ChannelFactory =
    std::function<Result<std::unique_ptr<ReplicaChannel>>(bool reseed)>;

struct SupervisorOptions {
  using Clock = std::chrono::steady_clock;

  /// Target gap between health probes of a healthy slot. Each slot's
  /// actual gap is jittered within [interval*(1-probe_jitter), interval]
  /// so a fleet of slots does not probe in lockstep.
  uint64_t probe_interval_ms = 50;
  double probe_jitter = 0.25;
  /// Reconnect pacing (backoff_base/cap/jitter) shared with query retries.
  runtime::TransientPolicy transient;
  /// Consecutive transient Sync failures before the slot is declared
  /// flapping: the channel is dropped and rebuilt under backoff.
  int reconnect_after_failures = 3;
  /// Consecutive dead `primary_alive` probes before automatic failover.
  int primary_death_probes = 5;
  bool auto_failover = true;
  /// Seeds per-slot probe jitter and backoff jitter streams.
  uint64_t jitter_seed = 0x6d636d5375ULL;
  /// Injectable clock for tests; defaults to the steady clock.
  std::function<Clock::time_point()> now;
  /// Primary liveness probe; unset = the primary is assumed alive and
  /// failover only happens via an explicit FailOver() call.
  std::function<bool()> primary_alive;
};

/// \brief Owns and supervises a fleet of replica slots (see file comment
/// for the state machine and the promotion safety invariant).
class ReplicaSupervisor {
 public:
  enum class SlotPhase : uint8_t {
    kConnecting,  ///< no live channel; build due now
    kStreaming,   ///< channel live and healthy
    kBackoff,     ///< flapping; rebuild scheduled after a capped delay
    kHalted,      ///< terminal: a different slot won the failover
    kPromoted,    ///< terminal: this slot is the new authority
  };

  struct SlotStatus {
    std::string name;
    SlotPhase phase = SlotPhase::kConnecting;
    Follower::Health health;
    /// Highest primary tip this slot ever saw acked (survives rebuilds).
    uint64_t fleet_tip_epoch = 0;
    int consecutive_failures = 0;
    uint64_t reconnects = 0;
    uint64_t reseeds = 0;
    uint64_t flaps = 0;
    Status last_error;
  };

  struct Stats {
    uint64_t probes = 0;     ///< Tick() rounds executed
    uint64_t flaps = 0;      ///< transient outages (per outage, not per try)
    uint64_t reseeds = 0;    ///< sticky verdicts that forced a rebuild
    uint64_t failovers = 0;  ///< successful promotions
    uint64_t max_lag_epochs = 0;  ///< worst current lag across live slots
    bool failed_over = false;
  };

  explicit ReplicaSupervisor(SupervisorOptions options);

  /// Register a replica slot. Names must be unique; the first build is
  /// attempted on the next Tick().
  [[nodiscard]] Status AddReplica(std::string name, ChannelFactory factory)
      MCM_EXCLUDES(mu_);

  /// One supervision round: probe the primary, then for every due slot
  /// build/sync/classify per the state machine. Returns OK even when slots
  /// are unhealthy (their state is the report); errors only for misuse.
  [[nodiscard]] Status Tick() MCM_EXCLUDES(mu_);

  /// Elect and promote the best candidate (see the safety invariant).
  /// Idempotent after success. kDataLoss when every candidate would lose
  /// acked commits; kUnavailable when no live candidate exists.
  [[nodiscard]] Status FailOver() MCM_EXCLUDES(mu_);

  std::vector<SlotStatus> slots() const MCM_EXCLUDES(mu_);
  Stats stats() const MCM_EXCLUDES(mu_);
  /// Name of the promoted slot; "" before a successful failover.
  std::string promoted() const MCM_EXCLUDES(mu_);

 private:
  struct Slot {
    std::string name;
    ChannelFactory factory;
    std::unique_ptr<ReplicaChannel> channel;
    SlotPhase phase = SlotPhase::kConnecting;
    bool reseed_pending = false;
    /// Monotone watermark of acked primary tips this slot observed; the
    /// channel (and its Follower) may be rebuilt many times, but a commit
    /// once advertised as acked never leaves this number.
    uint64_t fleet_tip = 0;
    uint64_t last_applied = 0;  ///< survives rebuilds for observability
    int consecutive_failures = 0;
    int backoff_attempt = 0;
    uint64_t reconnects = 0;
    uint64_t reseeds = 0;
    uint64_t flaps = 0;
    bool in_outage = false;  ///< so one outage counts one flap
    SupervisorOptions::Clock::time_point next_probe{};
    bool probe_scheduled = false;
    Status last_error;
    Rng jitter;
  };

  SupervisorOptions::Clock::time_point Now() const;
  void ObserveHealth(Slot& slot) MCM_REQUIRES(mu_);
  void ScheduleProbe(Slot& slot, uint64_t delay_ms) MCM_REQUIRES(mu_);
  void RunSlot(Slot& slot) MCM_REQUIRES(mu_);
  Status FailOverLocked() MCM_REQUIRES(mu_);

  const SupervisorOptions options_;

  /// Rank 3 of the lock-order registry (util/mutex.h): held across slot
  /// Sync/Promote, which take follower and store locks beneath it.
  mutable util::Mutex mu_ MCM_ACQUIRED_AFTER(util::kLockRankSupervisor)
      MCM_ACQUIRED_BEFORE(util::kLockRankFollower);
  std::vector<Slot> slots_ MCM_GUARDED_BY(mu_);
  Stats stats_ MCM_GUARDED_BY(mu_);
  std::string promoted_ MCM_GUARDED_BY(mu_);
  int dead_primary_probes_ MCM_GUARDED_BY(mu_) = 0;
};

}  // namespace mcm
