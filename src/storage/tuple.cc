#include "storage/tuple.h"

#include <string>

namespace mcm {

std::string Tuple::ToString() const {
  std::string out = "(";
  for (uint32_t i = 0; i < arity_; ++i) {
    if (i > 0) out += ", ";
    out += std::to_string(values_[i]);
  }
  out += ")";
  return out;
}

}  // namespace mcm
