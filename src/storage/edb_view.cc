#include "storage/edb_view.h"

namespace mcm {

Status EdbView::AttachTo(Database* dst) const {
  for (const std::string& name : version_->RelationNames()) {
    std::shared_ptr<const Relation> base = version_->Share(name);
    if (base == nullptr) continue;  // unreachable: names come from the map
    MCM_ASSIGN_OR_RETURN(Relation* attached,
                         dst->AttachBorrowed(name, std::move(base)));
    (void)attached;
  }
  return Status::OK();
}

}  // namespace mcm
