// Loading and saving relations as TSV text files.
//
// Format: one tuple per line, values separated by tabs. A value that parses
// as a signed 64-bit integer is stored as the integer; anything else is
// interned as a symbol. Lines starting with '#' and blank lines are
// skipped. This is the interchange format used by the mcmq command-line
// tool (and mirrors the facts format of engines like Souffle).
#pragma once

#include <iosfwd>
#include <string>
#include <string_view>

#include "storage/database.h"
#include "util/status.h"

namespace mcm {

/// Read tuples from `path` into relation `name` (created with the arity of
/// the first data line if absent). Fails on arity mismatches or I/O errors.
Status LoadRelationTsv(Database* db, const std::string& name,
                       const std::string& path);

/// Stream variant of LoadRelationTsv.
Status LoadRelationTsvStream(Database* db, const std::string& name,
                             std::istream& in, const std::string& origin);

/// Write relation `name` to `path`, resolving symbol ids back to their
/// strings. Integer values that happen to collide with symbol ids are
/// written as symbols only when the relation was built from symbols; since
/// the engine does not track per-column types, the caller chooses with
/// `resolve_symbols`.
Status SaveRelationTsv(const Database& db, const std::string& name,
                       const std::string& path, bool resolve_symbols = true);

/// Stream variant of SaveRelationTsv.
Status SaveRelationTsvStream(const Database& db, const std::string& name,
                             std::ostream& out, bool resolve_symbols = true);

/// \brief Durably replace `path` with `contents`.
///
/// The crash-safe file replacement discipline used by checkpoints: write to
/// `path + ".tmp"`, fsync the temp file, rename it over `path`, then fsync
/// the parent directory. A crash at any point leaves either the old file or
/// the new one — never a torn mixture. Fault-injection sites
/// "io/atomic/write", "io/atomic/fsync" and "io/atomic/rename" sit before
/// the corresponding syscalls; a failure (injected or real) cleans up the
/// temp file and leaves `path` untouched.
Status WriteFileAtomic(const std::string& path, std::string_view contents);

/// fsync the directory containing `path`, making a rename of `path` itself
/// durable. Part of the atomic-replacement discipline above; exposed for
/// the WAL's log rotation.
Status SyncParentDir(const std::string& path);

/// Read all of `path` into `*out`. NotFound when the file does not exist.
Status ReadFileToString(const std::string& path, std::string* out);

}  // namespace mcm
