// Fixed-arity tuple with inline storage.
//
// Tuples never allocate: arity is bounded by kMaxTupleArity (large enough
// for all rewritten programs this engine produces — the widest predicates
// are supplementary magic predicates of arity <= 6).
#pragma once

#include <algorithm>
#include <array>
#include <cassert>
#include <cstdint>
#include <initializer_list>
#include <string>

#include "storage/value.h"
#include "util/lifetime_annotations.h"

namespace mcm {

/// Maximum tuple arity supported by the engine.
inline constexpr uint32_t kMaxTupleArity = 8;

/// \brief A row of up to kMaxTupleArity values, stored inline.
///
/// Equality, hashing and lexicographic ordering consider exactly the first
/// `arity()` slots.
class Tuple {
 public:
  Tuple() : arity_(0) { values_.fill(0); }

  explicit Tuple(uint32_t arity) : arity_(arity) {
    assert(arity <= kMaxTupleArity);
    values_.fill(0);
  }

  Tuple(std::initializer_list<Value> vals)
      : arity_(static_cast<uint32_t>(vals.size())) {
    assert(vals.size() <= kMaxTupleArity);
    values_.fill(0);
    std::copy(vals.begin(), vals.end(), values_.begin());
  }

  uint32_t arity() const { return arity_; }

  Value operator[](uint32_t i) const {
    assert(i < arity_);
    return values_[i];
  }
  Value& operator[](uint32_t i) MCM_LIFETIME_BOUND {
    assert(i < arity_);
    return values_[i];
  }

  const Value* data() const MCM_LIFETIME_BOUND { return values_.data(); }

  bool operator==(const Tuple& other) const {
    if (arity_ != other.arity_) return false;
    return std::equal(values_.begin(), values_.begin() + arity_,
                      other.values_.begin());
  }
  bool operator!=(const Tuple& other) const { return !(*this == other); }

  bool operator<(const Tuple& other) const {
    uint32_t n = std::min(arity_, other.arity_);
    for (uint32_t i = 0; i < n; ++i) {
      if (values_[i] != other.values_[i]) return values_[i] < other.values_[i];
    }
    return arity_ < other.arity_;
  }

  uint64_t Hash() const {
    uint64_t h = 0x2545f4914f6cdd1dULL ^ arity_;
    for (uint32_t i = 0; i < arity_; ++i) {
      h = HashCombine(h, static_cast<uint64_t>(values_[i]));
    }
    return h;
  }

  /// "(v0, v1, ...)" — for debugging and test failure messages.
  std::string ToString() const;

 private:
  uint32_t arity_;
  std::array<Value, kMaxTupleArity> values_;
};

struct TupleHash {
  size_t operator()(const Tuple& t) const { return static_cast<size_t>(t.Hash()); }
};

}  // namespace mcm
