// Catalog of named relations plus the shared symbol table and access stats.
#pragma once

#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "storage/access_stats.h"
#include "storage/relation.h"
#include "storage/symbol_table.h"
#include "util/lifetime_annotations.h"
#include "util/status.h"

namespace mcm {

/// \brief An in-memory database: named relations + interning + cost counters.
///
/// All relations created through a Database share its AccessStats, so a
/// single counter captures the total tuple-retrieval cost of evaluating a
/// query — the unit used throughout the paper's complexity tables.
///
/// Thread safety: a Database is single-owner — evaluation mutates relations,
/// counts stats, and builds lazy indexes, none of which is synchronized.
/// Even the const read paths are not shareable across threads: Contains() /
/// Get() / Scan() / Probe() count into the shared AccessStats through a
/// const method, and Probe() builds its hash index lazily on first use
/// (mutation hiding behind const — see the concurrency audit in DESIGN.md
/// 5e). The two sanctioned cross-thread paths are the SymbolTable (which is
/// internally synchronized and may be shared via the external-table
/// constructor) and SnapshotInto(), which reads only truly-const,
/// uninstrumented state and is safe from many threads at once as long as
/// nobody mutates the source.
class MCM_OWNER(Relation) Database {
 public:
  Database() = default;
  /// A database that interns through `shared_symbols` (not owned; must
  /// outlive this database) instead of its own table. Used by the query
  /// service: per-request working databases share the base EDB's table so
  /// snapshotted Values resolve consistently and concurrently.
  explicit Database(SymbolTable* shared_symbols) : symbols_(shared_symbols) {}
  Database(const Database&) = delete;
  Database& operator=(const Database&) = delete;

  /// Create a relation; error if the name is taken.
  Result<Relation*> CreateRelation(const std::string& name, uint32_t arity);

  /// Install a zero-copy read-only borrow of `base` (Relation::Borrow)
  /// under `name`, instrumented by this database's stats; error if the
  /// name is taken. This is EdbView's per-relation attach step — the
  /// zero-copy replacement for SnapshotInto's per-tuple copy.
  [[nodiscard]] Result<Relation*> AttachBorrowed(const std::string& name,
                                   std::shared_ptr<const Relation> base);

  /// Fetch an existing relation or create it.
  Relation* GetOrCreateRelation(const std::string& name, uint32_t arity)
      MCM_LIFETIME_BOUND;

  /// nullptr if absent.
  Relation* Find(const std::string& name) MCM_LIFETIME_BOUND;
  const Relation* Find(const std::string& name) const MCM_LIFETIME_BOUND;

  /// Error Status if absent.
  Result<Relation*> Get(const std::string& name);

  bool Drop(const std::string& name);

  std::vector<std::string> RelationNames() const;

  /// The interning table. Annotated lifetimebound even though a *shared*
  /// table outlives the database: the discipline is that references
  /// obtained through a Database do not outlive it — code that needs the
  /// table past the working database's life takes it from its true owner
  /// (the VersionedStore / base Database) instead.
  SymbolTable& symbols() MCM_LIFETIME_BOUND { return *symbols_; }
  const SymbolTable& symbols() const MCM_LIFETIME_BOUND { return *symbols_; }

  AccessStats& stats() MCM_LIFETIME_BOUND { return stats_; }
  const AccessStats& stats() const MCM_LIFETIME_BOUND { return stats_; }
  void ResetStats() { stats_.Reset(); }

  /// Total number of tuples across all relations.
  size_t TotalTuples() const;

  /// Approximate resident footprint of the stored tuples: value payload
  /// plus a flat per-tuple bookkeeping estimate for the dedup set and
  /// per-column indexes. Used by the execution governor's memory budget;
  /// deliberately cheap (O(#relations)), not an exact allocator measure.
  size_t ApproxBytes() const;

  /// Copy every relation's tuples into `dst` (relations are created there
  /// as needed; existing same-name relations receive the tuples, erroring
  /// on an arity mismatch). This is the query service's per-request
  /// isolation step, and the one relation read path that is safe to run
  /// from many threads against the same source at once: it touches only
  /// name/arity and the uninstrumented tuple storage, so neither the
  /// source's AccessStats nor its lazy indexes are written. The symbol
  /// table is NOT copied — share it via the external-table constructor so
  /// the snapshotted Values keep resolving.
  ///
  /// Concurrent-hot-swap audit (PR 5): this safety claim requires a frozen
  /// source. Snapshotting a Database while another thread mutates its
  /// relations is a data race (Insert appends to the vector SnapshotInto
  /// iterates). The versioned store therefore never mutates in place —
  /// commits build new immutable Relation objects (copy-on-write) and swap
  /// the tip pointer, so EdbVersion::SnapshotInto on a pinned version is
  /// race-free by construction no matter how many commits land concurrently.
  [[nodiscard]] Status SnapshotInto(Database* dst) const;

 private:
  std::unordered_map<std::string, std::unique_ptr<Relation>> relations_;
  SymbolTable own_symbols_;
  /// Points at own_symbols_ unless the sharing constructor redirected it.
  SymbolTable* symbols_ = &own_symbols_;
  AccessStats stats_;
};

}  // namespace mcm
