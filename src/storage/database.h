// Catalog of named relations plus the shared symbol table and access stats.
#pragma once

#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "storage/access_stats.h"
#include "storage/relation.h"
#include "storage/symbol_table.h"
#include "util/status.h"

namespace mcm {

/// \brief An in-memory database: named relations + interning + cost counters.
///
/// All relations created through a Database share its AccessStats, so a
/// single counter captures the total tuple-retrieval cost of evaluating a
/// query — the unit used throughout the paper's complexity tables.
class Database {
 public:
  Database() = default;
  Database(const Database&) = delete;
  Database& operator=(const Database&) = delete;

  /// Create a relation; error if the name is taken.
  Result<Relation*> CreateRelation(const std::string& name, uint32_t arity);

  /// Fetch an existing relation or create it.
  Relation* GetOrCreateRelation(const std::string& name, uint32_t arity);

  /// nullptr if absent.
  Relation* Find(const std::string& name);
  const Relation* Find(const std::string& name) const;

  /// Error Status if absent.
  Result<Relation*> Get(const std::string& name);

  bool Drop(const std::string& name);

  std::vector<std::string> RelationNames() const;

  SymbolTable& symbols() { return symbols_; }
  const SymbolTable& symbols() const { return symbols_; }

  AccessStats& stats() { return stats_; }
  const AccessStats& stats() const { return stats_; }
  void ResetStats() { stats_.Reset(); }

  /// Total number of tuples across all relations.
  size_t TotalTuples() const;

  /// Approximate resident footprint of the stored tuples: value payload
  /// plus a flat per-tuple bookkeeping estimate for the dedup set and
  /// per-column indexes. Used by the execution governor's memory budget;
  /// deliberately cheap (O(#relations)), not an exact allocator measure.
  size_t ApproxBytes() const;

 private:
  std::unordered_map<std::string, std::unique_ptr<Relation>> relations_;
  SymbolTable symbols_;
  AccessStats stats_;
};

}  // namespace mcm
