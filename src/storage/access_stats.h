// Tuple-retrieval accounting.
//
// The paper measures every method in a single unit: "the cost of retrieving
// a tuple in a database relation" (Section 3). AccessStats is the engine's
// implementation of that unit: every tuple yielded by a relation scan or an
// index probe increments `tuples_read`. Benchmarks compare methods by this
// counter, which makes the measured numbers directly comparable to the
// Theta-formulas of Tables 1-5.
#pragma once

#include <cstdint>
#include <string>

namespace mcm {

/// \brief Shared counters for relation accesses.
///
/// One AccessStats object is owned by a Database and shared by all of its
/// relations; standalone relations may carry their own. Counters are plain
/// (non-atomic) — the engine is single-threaded by design.
struct AccessStats {
  uint64_t tuples_read = 0;      ///< Paper's cost unit: tuples retrieved.
  uint64_t tuples_inserted = 0;  ///< Successful (non-duplicate) inserts.
  uint64_t insert_attempts = 0;  ///< Inserts including duplicates.
  uint64_t scans = 0;            ///< Full-relation scan operations started.
  uint64_t probes = 0;           ///< Index probe operations started.

  void Reset() { *this = AccessStats(); }

  AccessStats& operator+=(const AccessStats& o) {
    tuples_read += o.tuples_read;
    tuples_inserted += o.tuples_inserted;
    insert_attempts += o.insert_attempts;
    scans += o.scans;
    probes += o.probes;
    return *this;
  }

  std::string ToString() const;
};

}  // namespace mcm
