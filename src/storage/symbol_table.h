// Interning table mapping string constants to dense Value ids.
#pragma once

#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "storage/value.h"

namespace mcm {

/// \brief Bidirectional string <-> id interning table.
///
/// Ids are dense and start at 0, so they can double as graph node ids. The
/// table grows monotonically; symbols are never removed.
class SymbolTable {
 public:
  /// Intern `s`, returning its id (existing or freshly assigned).
  Value Intern(std::string_view s) {
    auto it = ids_.find(std::string(s));
    if (it != ids_.end()) return it->second;
    Value id = static_cast<Value>(symbols_.size());
    symbols_.emplace_back(s);
    ids_.emplace(symbols_.back(), id);
    return id;
  }

  /// Lookup without interning; returns -1 if absent.
  Value Find(std::string_view s) const {
    auto it = ids_.find(std::string(s));
    return it == ids_.end() ? -1 : it->second;
  }

  /// The string for an id previously returned by Intern().
  const std::string& Resolve(Value id) const { return symbols_.at(static_cast<size_t>(id)); }

  bool Contains(Value id) const {
    return id >= 0 && static_cast<size_t>(id) < symbols_.size();
  }

  size_t size() const { return symbols_.size(); }

 private:
  std::vector<std::string> symbols_;
  std::unordered_map<std::string, Value> ids_;
};

}  // namespace mcm
