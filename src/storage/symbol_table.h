// Interning table mapping string constants to dense Value ids.
#pragma once

#include <deque>
#include <string>
#include <string_view>
#include <unordered_map>

#include "storage/value.h"
#include "util/lifetime_annotations.h"
#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace mcm {

/// \brief Bidirectional string <-> id interning table.
///
/// Ids are dense and start at 0, so they can double as graph node ids. The
/// table grows monotonically; symbols are never removed.
///
/// Thread safety: all operations are internally synchronized (a
/// reader/writer lock), so one table can be shared by the concurrent query
/// service — workers interning request constants while others resolve
/// answer values. Ids are stable: concurrent Intern() calls on the same
/// string agree on a single id, and references returned by Resolve() stay
/// valid for the table's lifetime (symbols live in a deque, whose elements
/// never move on growth). The guarded fields are capability-checked under
/// -DMCM_THREAD_SAFETY=ON; mu_ is a leaf in the lock-order registry
/// (util/mutex.h rank 7) — no other registered lock may be acquired while
/// holding it.
class MCM_OWNER(std::string) SymbolTable {
 public:
  SymbolTable() = default;
  SymbolTable(const SymbolTable&) = delete;
  SymbolTable& operator=(const SymbolTable&) = delete;

  /// Intern `s`, returning its id (existing or freshly assigned).
  Value Intern(std::string_view s) {
    {
      util::ReaderMutexLock lock(mu_);
      auto it = ids_.find(s);
      if (it != ids_.end()) return it->second;
    }
    util::WriterMutexLock lock(mu_);
    auto it = ids_.find(s);  // re-check: raced with another interner
    if (it != ids_.end()) return it->second;
    Value id = static_cast<Value>(symbols_.size());
    symbols_.emplace_back(s);
    ids_.emplace(symbols_.back(), id);
    return id;
  }

  /// Lookup without interning; returns -1 if absent.
  Value Find(std::string_view s) const {
    util::ReaderMutexLock lock(mu_);
    auto it = ids_.find(s);
    return it == ids_.end() ? -1 : it->second;
  }

  /// The string for an id previously returned by Intern(). The reference
  /// stays valid across concurrent Intern() calls (deque storage), but not
  /// past the table itself — lifetimebound makes escaping it a diagnostic.
  const std::string& Resolve(Value id) const MCM_LIFETIME_BOUND {
    util::ReaderMutexLock lock(mu_);
    return symbols_.at(static_cast<size_t>(id));
  }

  bool Contains(Value id) const {
    util::ReaderMutexLock lock(mu_);
    return id >= 0 && static_cast<size_t>(id) < symbols_.size();
  }

  size_t size() const {
    util::ReaderMutexLock lock(mu_);
    return symbols_.size();
  }

 private:
  mutable util::SharedMutex mu_
      MCM_ACQUIRED_AFTER(util::kLockRankSymbols)
          MCM_ACQUIRED_BEFORE(util::kLockRankFaultInjection);
  // Deque, not vector: growth must not move existing strings, because
  // Resolve() hands out references and ids_ keys view into them.
  std::deque<std::string> symbols_ MCM_GUARDED_BY(mu_);
  std::unordered_map<std::string_view, Value> ids_ MCM_GUARDED_BY(mu_);
};

}  // namespace mcm
