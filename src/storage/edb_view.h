// Zero-copy read surface over one pinned EDB version.
//
// An EdbView is the first consumer the compile-time lifetime proofs
// (util/lifetime_annotations.h, tests/lifetime/) make safe to ship: a
// string_view-shaped handle over an EdbVersion that lets the query service
// serve the base-EDB read path *without* the per-attempt SnapshotInto copy
// that used to dominate Submit-to-answer cost.
//
//   before:  per attempt, every base tuple is re-inserted into the working
//            database (O(|EDB|) hashing + copying, per request, per retry);
//   after:   AttachTo() installs an O(1) borrow per relation
//            (Relation::Borrow): the working database reads the version's
//            frozen tuple storage in place and materializes a private copy
//            only if something actually mutates a base relation (program
//            facts on an EDB predicate — rare and still correct).
//
// Lifetime contract, statically enforced:
//   * the view is MCM_VIEW_OF(EdbVersion) and its constructor parameter is
//     MCM_LIFETIME_BOUND — building a view over a temporary pin
//     (`EdbView v(*store.Pin());`) or letting one escape the pin's scope
//     is a compile error under -DMCM_LIFETIME_SAFETY=ON;
//   * everything AttachTo() installs is nevertheless *co-owning* at the
//     storage level (each borrow holds a shared_ptr to its base relation),
//     so even a working database that outlives the pin by mistake reads
//     valid memory — the static layer enforces the discipline, the
//     shared_ptr layer removes the cliff behind it.
//
// Thread safety: a view is a read-only handle; any number of views on any
// number of threads may share one pinned version (borrowed reads touch
// only the version's frozen tuple vectors). The view object itself is
// cheap and per-use — create one where needed, do not share it.
#pragma once

#include <memory>
#include <string>

#include "storage/database.h"
#include "storage/versioned_store.h"
#include "util/lifetime_annotations.h"
#include "util/status.h"

namespace mcm {

/// \brief Non-owning, read-only view over a pinned EdbVersion.
class MCM_VIEW_OF(EdbVersion) EdbView {
 public:
  /// The version must stay pinned for the view's lifetime (keep the
  /// shared_ptr from VersionedStore::Pin() alive; passing `*store.Pin()`
  /// directly is a compile error under the lifetime gate).
  explicit EdbView(const EdbVersion& version MCM_LIFETIME_BOUND)
      : version_(&version) {}

  uint64_t epoch() const { return version_->epoch(); }
  size_t TotalTuples() const { return version_->TotalTuples(); }
  size_t ApproxBytes() const { return version_->ApproxBytes(); }

  /// nullptr if absent. The pointer is valid only while the pin is held —
  /// prefer consuming it in place.
  const Relation* Find(const std::string& name) const MCM_LIFETIME_BOUND {
    return version_->Find(name);
  }

  /// Install a zero-copy borrow of every relation of the pinned version
  /// into `dst` — the drop-in replacement for EdbVersion::SnapshotInto
  /// (same error contract: a same-name relation already present in `dst`
  /// is AlreadyExists; SnapshotInto instead merges, but the per-request
  /// working database is always fresh). O(#relations), no tuple copies.
  [[nodiscard]] Status AttachTo(Database* dst) const;

 private:
  const EdbVersion* version_;
};

}  // namespace mcm
