// Instrumented in-memory relation with incremental hash indexes.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "storage/access_stats.h"
#include "storage/tuple.h"
#include "util/lifetime_annotations.h"
#include "util/status.h"

namespace mcm {

/// Set of column positions an index is keyed on (in key order).
using IndexKey = std::vector<uint32_t>;

/// \brief A deduplicated multiset-free relation (set semantics).
///
/// Storage model:
///  * `tuples_` keeps insertion order, which gives fixpoint engines stable
///    snapshot/delta iteration (tuples are only ever appended);
///  * a hash set over tuple ids provides O(1) duplicate elimination;
///  * secondary hash indexes on arbitrary column subsets are created on
///    demand and maintained incrementally on insert.
///
/// Every access that yields tuples reports to the attached AccessStats, which
/// implements the paper's cost unit (tuple retrievals).
///
/// Borrow mode (zero-copy snapshots): Borrow() builds a relation that
/// *shares* an immutable base relation's tuple storage instead of copying
/// it. The borrower behaves exactly like a copy — same tuples, same ids,
/// its own lazy indexes and its own AccessStats — but costs O(1) to
/// create. The first mutation (Insert of a new tuple) materializes the
/// borrower into an ordinary owned relation (copy-on-write), so semantics
/// are indistinguishable from an eager copy. The base relation is only
/// ever read through its uninstrumented tuple storage — its lazy indexes,
/// dedup set, and stats are never touched — so any number of borrowers on
/// any number of threads may share one frozen base (the EdbVersion
/// contract, storage/versioned_store.h). The borrower itself is
/// single-owner, like every Relation.
class MCM_OWNER(Tuple) Relation {
 public:
  Relation(std::string name, uint32_t arity,
           AccessStats* stats = nullptr)
      : name_(std::move(name)), arity_(arity), stats_(stats) {}

  /// Zero-copy read-only snapshot of `base` (shared, kept alive by the
  /// returned relation; must itself be frozen — for borrowers of borrowers
  /// the chain is collapsed to the root owner). `stats` receives this
  /// borrower's instrumentation, independent of the base's.
  static Relation Borrow(std::shared_ptr<const Relation> base,
                         AccessStats* stats);

  Relation(const Relation&) = delete;
  Relation& operator=(const Relation&) = delete;
  Relation(Relation&&) = default;
  Relation& operator=(Relation&&) = default;

  const std::string& name() const MCM_LIFETIME_BOUND { return name_; }
  uint32_t arity() const { return arity_; }
  size_t size() const { return store().size(); }
  bool empty() const { return store().empty(); }

  /// True while this relation shares a base's tuple storage (no mutation
  /// has materialized it yet).
  bool borrowed() const { return base_ != nullptr; }

  /// Redirect instrumentation to `stats` (may be nullptr to disable).
  void set_stats(AccessStats* stats) { stats_ = stats; }
  AccessStats* stats() const { return stats_; }

  /// Insert `t`; returns true iff the tuple was new. Asserts on arity
  /// mismatch in debug builds. On a borrowed relation the first insert
  /// materializes a private copy of the shared storage (copy-on-write).
  bool Insert(const Tuple& t);

  /// Convenience for binary relations.
  bool Insert2(Value a, Value b) { return Insert(Tuple{a, b}); }

  /// Membership test (counts as one probe + one tuple read if found).
  bool Contains(const Tuple& t) const;

  /// Tuple by dense id in [0, size()). Counts one tuple read.
  const Tuple& Get(size_t id) const MCM_LIFETIME_BOUND;

  /// Tuple by id without instrumentation — for engine-internal bookkeeping
  /// (e.g. copying between snapshots) that the paper's cost model does not
  /// charge for.
  const Tuple& PeekUnchecked(size_t id) const MCM_LIFETIME_BOUND {
    return store()[id];
  }

  /// All tuples, uninstrumented view (used by printers/tests).
  const std::vector<Tuple>& TuplesUnchecked() const MCM_LIFETIME_BOUND {
    return store();
  }

  /// Full scan: returns all tuples, charging one read per tuple.
  std::vector<Tuple> Scan() const;

  /// Probe the index on `key_cols` with `key_vals`; returns matching tuple
  /// ids, charging one read per match. Builds the index on first use. The
  /// reference is invalidated by the next Insert into this relation.
  const std::vector<uint32_t>& Probe(const IndexKey& key_cols,
                                     const std::vector<Value>& key_vals) const
      MCM_LIFETIME_BOUND;

  /// Remove everything (indexes included; a borrow is released, not
  /// materialized).
  void Clear();

  /// Distinct values in column `col` (uninstrumented; used by statistics).
  std::vector<Value> DistinctColumn(uint32_t col) const;

  std::string ToString(size_t limit = 32) const;

 private:
  struct Index {
    // Column positions this index is keyed on.
    IndexKey key_cols;
    // Packed key -> tuple ids. Keys are hashed tuples over the key columns.
    std::unordered_map<Tuple, std::vector<uint32_t>, TupleHash> buckets;
  };

  /// The tuple storage this relation reads: its own, or the borrowed
  /// base's. Everything below funnels reads through here.
  const std::vector<Tuple>& store() const {
    return base_ != nullptr ? base_->tuples_ : tuples_;
  }

  /// Copy-on-write detach: copy the base's tuples and dedup set into this
  /// relation and drop the borrow. Tuple ids are unchanged, so indexes
  /// already built over the shared storage stay valid.
  void Materialize();

  Tuple MakeKey(const IndexKey& cols, const Tuple& t) const;
  Index& GetOrBuildIndex(const IndexKey& cols) const;

  void CountRead(uint64_t n) const {
    if (stats_ != nullptr) stats_->tuples_read += n;
  }

  std::string name_;
  uint32_t arity_;
  AccessStats* stats_;
  std::vector<Tuple> tuples_;
  std::unordered_set<Tuple, TupleHash> dedup_;
  /// Borrow mode: the frozen relation whose tuple storage this one shares
  /// (null once owned/materialized). The shared_ptr keeps the storage
  /// alive even if the pin that produced it is released early.
  std::shared_ptr<const Relation> base_;
  // Keyed by the column list; mutable because indexes are built lazily from
  // const probes.
  mutable std::unordered_map<std::string, Index> indexes_;
  static const std::vector<uint32_t> kEmptyPostings;
};

}  // namespace mcm
