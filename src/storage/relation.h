// Instrumented in-memory relation with incremental hash indexes.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "storage/access_stats.h"
#include "storage/tuple.h"
#include "util/status.h"

namespace mcm {

/// Set of column positions an index is keyed on (in key order).
using IndexKey = std::vector<uint32_t>;

/// \brief A deduplicated multiset-free relation (set semantics).
///
/// Storage model:
///  * `tuples_` keeps insertion order, which gives fixpoint engines stable
///    snapshot/delta iteration (tuples are only ever appended);
///  * a hash set over tuple ids provides O(1) duplicate elimination;
///  * secondary hash indexes on arbitrary column subsets are created on
///    demand and maintained incrementally on insert.
///
/// Every access that yields tuples reports to the attached AccessStats, which
/// implements the paper's cost unit (tuple retrievals).
class Relation {
 public:
  Relation(std::string name, uint32_t arity,
           AccessStats* stats = nullptr)
      : name_(std::move(name)), arity_(arity), stats_(stats) {}

  Relation(const Relation&) = delete;
  Relation& operator=(const Relation&) = delete;
  Relation(Relation&&) = default;
  Relation& operator=(Relation&&) = default;

  const std::string& name() const { return name_; }
  uint32_t arity() const { return arity_; }
  size_t size() const { return tuples_.size(); }
  bool empty() const { return tuples_.empty(); }

  /// Redirect instrumentation to `stats` (may be nullptr to disable).
  void set_stats(AccessStats* stats) { stats_ = stats; }
  AccessStats* stats() const { return stats_; }

  /// Insert `t`; returns true iff the tuple was new. Asserts on arity
  /// mismatch in debug builds.
  bool Insert(const Tuple& t);

  /// Convenience for binary relations.
  bool Insert2(Value a, Value b) { return Insert(Tuple{a, b}); }

  /// Membership test (counts as one probe + one tuple read if found).
  bool Contains(const Tuple& t) const;

  /// Tuple by dense id in [0, size()). Counts one tuple read.
  const Tuple& Get(size_t id) const;

  /// Tuple by id without instrumentation — for engine-internal bookkeeping
  /// (e.g. copying between snapshots) that the paper's cost model does not
  /// charge for.
  const Tuple& PeekUnchecked(size_t id) const { return tuples_[id]; }

  /// All tuples, uninstrumented view (used by printers/tests).
  const std::vector<Tuple>& TuplesUnchecked() const { return tuples_; }

  /// Full scan: returns all tuples, charging one read per tuple.
  std::vector<Tuple> Scan() const;

  /// Probe the index on `key_cols` with `key_vals`; returns matching tuple
  /// ids, charging one read per match. Builds the index on first use.
  const std::vector<uint32_t>& Probe(const IndexKey& key_cols,
                                     const std::vector<Value>& key_vals) const;

  /// Remove everything (indexes included).
  void Clear();

  /// Distinct values in column `col` (uninstrumented; used by statistics).
  std::vector<Value> DistinctColumn(uint32_t col) const;

  std::string ToString(size_t limit = 32) const;

 private:
  struct Index {
    // Column positions this index is keyed on.
    IndexKey key_cols;
    // Packed key -> tuple ids. Keys are hashed tuples over the key columns.
    std::unordered_map<Tuple, std::vector<uint32_t>, TupleHash> buckets;
  };

  Tuple MakeKey(const IndexKey& cols, const Tuple& t) const;
  Index& GetOrBuildIndex(const IndexKey& cols) const;

  void CountRead(uint64_t n) const {
    if (stats_ != nullptr) stats_->tuples_read += n;
  }

  std::string name_;
  uint32_t arity_;
  AccessStats* stats_;
  std::vector<Tuple> tuples_;
  std::unordered_set<Tuple, TupleHash> dedup_;
  // Keyed by the column list; mutable because indexes are built lazily from
  // const probes.
  mutable std::unordered_map<std::string, Index> indexes_;
  static const std::vector<uint32_t> kEmptyPostings;
};

}  // namespace mcm
