// TCP leg of the replication transport: ByteSink/ByteSource over
// util::Socket, plus a fault-injecting decorator for chaos tests.
//
// The wire carries exactly the CRC32 frame protocol from
// storage/replication.h — the socket classes add no framing of their own.
// Frames are length-delimited already (payload_len in the header), so the
// sink can hand the encoded frame bytes straight to the kernel and the
// source can hand raw chunks straight to the FrameDecoder; torn and
// corrupt deliveries are detected end-to-end by the frame CRC, not by the
// transport.
//
// Error taxonomy, matching the seam contract:
//
//   * SocketSink::Write — kUnavailable when the peer is gone OR the write
//     deadline expired mid-frame. Either way an unknown prefix may be on
//     the wire, so the sink poisons itself: every later Write fails fast
//     with kUnavailable and the owner must reconnect (redelivery after
//     reconnect is absorbed by the follower's seq<=applied no-op).
//   * SocketSource::Read — bytes, or "" on orderly peer shutdown, or
//     kUnavailable when nothing arrived within the poll window (retry).
//
// FaultyTransport wraps any sink/source pair and injects, deterministically
// under test control: full partitions (both directions dead), slow links
// (bytes trickle through a per-read cap), short writes (a frame's prefix
// reaches the wire, then the link dies), and the MCM_FAULT_POINT sites
// "net/write" / "net/read" for scripted one-shot failures.
//
// Thread safety: SocketSink and SocketSource are single-threaded like the
// shipper/apply loops that own them. FaultyTransport's knobs are atomics so
// a chaos-injector thread may flip them while the transport is in use.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <string_view>

#include "storage/replication.h"
#include "util/socket.h"
#include "util/status.h"

namespace mcm {

/// \brief ByteSink writing frames to a connected TCP socket.
class SocketSink : public ByteSink {
 public:
  struct Options {
    /// Deadline for each Write to fully drain into the kernel. A stalled
    /// peer (zero-window, dead network) trips this rather than wedging the
    /// shipper thread.
    uint64_t write_timeout_ms = 5000;
  };

  explicit SocketSink(util::Socket socket)
      : SocketSink(std::move(socket), Options()) {}
  SocketSink(util::Socket socket, Options options)
      : socket_(std::move(socket)), options_(options) {}

  [[nodiscard]] Status Write(std::string_view bytes) override;

 private:
  util::Socket socket_;
  Options options_;
  /// Set after any failed/partial write: the stream position is unknown,
  /// so continuing would interleave garbage into the frame protocol.
  bool poisoned_ = false;
};

/// \brief ByteSource reading frame bytes from a connected TCP socket.
class SocketSource : public ByteSource {
 public:
  struct Options {
    /// How long one Read waits for bytes before returning kUnavailable.
    /// Keep small: the apply loop treats kUnavailable as "nothing new" and
    /// re-polls on its own schedule.
    uint64_t read_timeout_ms = 10;
  };

  explicit SocketSource(util::Socket socket)
      : SocketSource(std::move(socket), Options()) {}
  SocketSource(util::Socket socket, Options options)
      : socket_(std::move(socket)), options_(options) {}

  [[nodiscard]] Result<std::string> Read(size_t max_bytes) override;

 private:
  util::Socket socket_;
  Options options_;
};

/// \brief Fault-injecting decorator over a ByteSink/ByteSource pair.
///
/// Wraps the real transport (socket or in-process) and lets a test flip
/// failure modes while shipper and follower run:
///
///   * SetPartitioned(true): both directions return kUnavailable — a
///     network partition; heal with SetPartitioned(false).
///   * SetReadChunkCap(n): a slow link — each Read delivers at most n
///     bytes, so frames arrive in dribbles and every partial-frame decoder
///     path gets exercised; 0 restores full-speed reads.
///   * FailWritesAfter(n): the next n bytes of writes reach the inner sink,
///     then the link dies — the canonical short-write/mid-frame-reset:
///     the peer sees a torn frame prefix followed by its stream ending.
///     ClearWriteFault() re-arms writes (after the owner reconnects).
///
/// All knobs are atomics; flipping them from a chaos thread while the
/// owning loops run is the intended use.
class FaultyTransport : public ByteSink, public ByteSource {
 public:
  FaultyTransport(ByteSink* sink, ByteSource* source)
      : sink_(sink), source_(source) {}

  [[nodiscard]] Status Write(std::string_view bytes) override;
  [[nodiscard]] Result<std::string> Read(size_t max_bytes) override;

  void SetPartitioned(bool on) {
    partitioned_.store(on, std::memory_order_relaxed);
  }
  bool partitioned() const {
    return partitioned_.load(std::memory_order_relaxed);
  }
  void SetReadChunkCap(size_t cap) {
    read_chunk_cap_.store(cap, std::memory_order_relaxed);
  }
  void FailWritesAfter(uint64_t bytes) {
    write_budget_.store(static_cast<int64_t>(bytes),
                        std::memory_order_relaxed);
  }
  void ClearWriteFault() {
    write_budget_.store(-1, std::memory_order_relaxed);
  }

 private:
  ByteSink* sink_;
  ByteSource* source_;
  std::atomic<bool> partitioned_{false};
  std::atomic<size_t> read_chunk_cap_{0};  ///< 0 = unlimited
  /// Remaining write bytes before the injected death; -1 = no fault armed.
  std::atomic<int64_t> write_budget_{-1};
};

}  // namespace mcm
