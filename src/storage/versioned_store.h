// Durable epoch-versioned EDB store: atomic hot-swap for readers, WAL +
// checkpoint durability for crashes.
//
// The store holds an immutable EdbVersion per committed update batch.
// Readers pin a version (a shared_ptr — the refcount IS the pin) and keep a
// perfectly consistent snapshot for as long as they hold it, while writers
// advance the tip underneath them. A commit is copy-on-write at relation
// granularity: untouched relations are shared between versions, touched
// ones are rebuilt, and every version interns through the store's single
// thread-safe SymbolTable so Values resolve identically across epochs.
//
// Durability (when Options::dir is set):
//   * every committed batch is appended to a CRC32-checksummed WAL and
//     fsynced before the tip moves — an acknowledged Commit survives a
//     crash;
//   * Checkpoint() writes the tip with the temp-file + atomic-rename
//     discipline of storage/io, then rotates the WAL;
//   * Recover() loads the last durable checkpoint and replays the WAL,
//     truncating at the first torn or corrupt record. A lost tail comes
//     back as StatusCode::kDataLoss with the store positioned on the
//     longest consistent prefix — never on a half-applied batch.
//
// Thread safety: Pin()/TipEpoch()/symbols() may be called from any thread.
// Commit()/Checkpoint()/Recover() are serialized internally (one writer at
// a time); they never block readers. Relations inside an EdbVersion must be
// read only through SnapshotInto()/TuplesUnchecked() when shared across
// threads — the instrumented Relation paths (Contains/Probe/Scan) mutate
// lazy indexes and are for single-threaded use (tests, tools).
//
// The discipline is capability-checked under -DMCM_THREAD_SAFETY=ON:
// commit_mu_ is the single-writer capability (it guards the WAL handle, so
// no WAL append can compile outside the commit path), tip_mu_ guards the
// tip pointer, and the registered order commit_mu_ -> tip_mu_ (ranks 4 -> 5
// in util/mutex.h) makes an inverted acquisition a compile error.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "storage/database.h"
#include "storage/relation.h"
#include "storage/symbol_table.h"
#include "storage/wal.h"
#include "util/lifetime_annotations.h"
#include "util/mutex.h"
#include "util/status.h"
#include "util/thread_annotations.h"

namespace mcm {

enum class UpdateOpKind : uint8_t {
  kInsert = 0,
  kDelete,
  kCreateRelation,
  kDropRelation,
};

/// One mutation inside an update batch. Insert/delete fields use the TSV
/// value convention: a field that parses as a signed 64-bit integer is an
/// integer, anything else is interned as a symbol.
struct UpdateOp {
  UpdateOpKind kind = UpdateOpKind::kInsert;
  std::string relation;
  uint32_t arity = 0;               ///< kCreateRelation only
  std::vector<std::string> fields;  ///< kInsert / kDelete only
};

/// An atomically-applied group of mutations. Validation is all-or-nothing:
/// a batch with any invalid op is rejected whole and the tip version is
/// untouched.
struct UpdateBatch {
  std::vector<UpdateOp> ops;

  void Insert(std::string relation, std::vector<std::string> fields) {
    ops.push_back({UpdateOpKind::kInsert, std::move(relation), 0,
                   std::move(fields)});
  }
  void Delete(std::string relation, std::vector<std::string> fields) {
    ops.push_back({UpdateOpKind::kDelete, std::move(relation), 0,
                   std::move(fields)});
  }
  void CreateRelation(std::string relation, uint32_t arity) {
    ops.push_back({UpdateOpKind::kCreateRelation, std::move(relation), arity,
                   {}});
  }
  void DropRelation(std::string relation) {
    ops.push_back({UpdateOpKind::kDropRelation, std::move(relation), 0, {}});
  }
  bool empty() const { return ops.empty(); }
};

/// \brief An immutable snapshot of the EDB at one epoch.
///
/// Obtained from VersionedStore::Pin(); stays fully consistent for the
/// lifetime of the shared_ptr regardless of concurrent commits. Relations
/// are shared copy-on-write with neighbouring versions and carry no
/// AccessStats instrumentation.
///
/// Lifetime: the shared_ptr IS the pin. References and relation pointers
/// obtained from a version are annotated lifetimebound — they must not
/// outlive the pin that produced them (tests/lifetime/ proves escapes are
/// compile errors under -DMCM_LIFETIME_SAFETY=ON). Share() hands out
/// co-owning relation handles for code that legitimately needs a relation
/// to survive pin release (Relation::Borrow, replication).
class MCM_OWNER(Relation) EdbVersion {
 public:
  uint64_t epoch() const { return epoch_; }

  /// nullptr if absent. See the header comment for the concurrency caveat
  /// on instrumented Relation reads.
  const Relation* Find(const std::string& name) const MCM_LIFETIME_BOUND;
  /// Co-owning handle to one relation (nullptr if absent): keeps the
  /// relation alive independently of this version's pin. The zero-copy
  /// EdbView path borrows through this, so a working database stays safe
  /// even if its pin is released first.
  std::shared_ptr<const Relation> Share(const std::string& name) const;
  std::vector<std::string> RelationNames() const;
  size_t TotalTuples() const;
  /// Precomputed at commit time; same estimate as Database::ApproxBytes.
  size_t ApproxBytes() const { return approx_bytes_; }

  /// Copy every relation's tuples into `dst` — the same contract (and the
  /// same sanctioned concurrent read path) as Database::SnapshotInto.
  [[nodiscard]] Status SnapshotInto(Database* dst) const;

 private:
  friend class VersionedStore;
  EdbVersion() = default;

  uint64_t epoch_ = 0;
  size_t approx_bytes_ = 0;
  std::map<std::string, std::shared_ptr<const Relation>> relations_;
};

/// \brief Versioned EDB store with WAL + checkpoint durability.
class VersionedStore {
 public:
  struct Options {
    /// Directory for wal.log / checkpoint.mcm (created on Recover). Empty
    /// means in-memory only: versioning and hot-swap without durability;
    /// Checkpoint() is then an error.
    std::string dir;
  };

  explicit VersionedStore(Options options = {});
  VersionedStore(const VersionedStore&) = delete;
  VersionedStore& operator=(const VersionedStore&) = delete;

  /// Bring the store to its recovered state; must be called exactly once,
  /// before any Commit. Returns OK when the durable state was intact (or
  /// the store is fresh / in-memory) and kDataLoss when a torn or corrupt
  /// WAL tail (or checkpoint) was truncated away — the store is then
  /// positioned on the longest consistent prefix and remains fully usable.
  [[nodiscard]] Status Recover() MCM_EXCLUDES(commit_mu_);

  bool durable() const { return !options_.dir.empty(); }
  std::string WalPath() const { return options_.dir + "/wal.log"; }
  /// Retained copy of the previous WAL segment, refreshed by Checkpoint().
  /// Recovery never reads it — it exists so a replication shipper can serve
  /// record-based catch-up to a follower that is at most one rotation
  /// behind (storage/replication.h).
  std::string WalPrevPath() const { return options_.dir + "/wal.prev.log"; }
  std::string CheckpointPath() const {
    return options_.dir + "/checkpoint.mcm";
  }

  /// Pin the current tip. O(1), wait-free with respect to writers.
  std::shared_ptr<const EdbVersion> Pin() const MCM_EXCLUDES(tip_mu_);
  uint64_t TipEpoch() const { return Pin()->epoch(); }

  /// Atomically apply `batch`: validate against the tip (rejecting the
  /// whole batch on the first invalid op), append + fsync the WAL record,
  /// build the copy-on-write successor version, and swap the tip. Returns
  /// the new epoch. Pinned readers are unaffected.
  [[nodiscard]] Result<uint64_t> Commit(const UpdateBatch& batch)
      MCM_EXCLUDES(commit_mu_);

  /// Write the tip as a durable checkpoint (temp file + atomic rename) and
  /// rotate the WAL. If rotation fails after the checkpoint landed, the old
  /// WAL keeps absorbing commits and replay filters the overlap by epoch —
  /// consistent either way.
  [[nodiscard]] Status Checkpoint() MCM_EXCLUDES(commit_mu_);

  /// Commit one batch that recreates every relation of `db` — the bootstrap
  /// path from TSV fact files. Values that resolve in `db`'s symbol table
  /// are carried over as symbols, everything else as integers (the
  /// SaveRelationTsv convention).
  [[nodiscard]] Result<uint64_t> BootstrapFromDatabase(const Database& db);

  // -- Replication follower surface (storage/replication.h) ------------------

  /// Apply one shipped WAL record payload (the exact bytes the primary
  /// appended) through the same parse/validate/commit path as Recover().
  /// Returns the resulting tip epoch. Semantics, in order:
  ///   * a payload whose sequence number is <= the tip epoch is a no-op
  ///     (idempotent redelivery after a shipper restart) returning the tip;
  ///   * a sequence gap (> tip + 1) is kDataLoss — records were lost in
  ///     transit and nothing past the gap may ever be applied;
  ///   * a payload that parses but does not validate against the tip is
  ///     kDataLoss (the stream diverged from the primary's history).
  /// The batch is re-logged to the follower's own WAL before the tip moves,
  /// so an acknowledged apply survives a follower crash. All-or-nothing: on
  /// any error the tip is untouched — never a half batch.
  [[nodiscard]] Result<uint64_t> ApplyReplicated(const std::string& payload)
      MCM_EXCLUDES(commit_mu_);

  /// Bootstrap this store from a primary checkpoint image (the exact bytes
  /// of its checkpoint.mcm). Only legal on a *fresh* store — recovered, at
  /// epoch 0, with an empty symbol table — because checkpoint symbol ids
  /// must re-intern to identical Values; anything else is
  /// kFailedPrecondition ("reseed required": tear the store down and start
  /// over). On success the image is also written to this store's own
  /// checkpoint path and the WAL is rotated to the snapshot epoch, so a
  /// restart recovers to the same state. Returns the snapshot epoch.
  [[nodiscard]] Result<uint64_t> InstallSnapshot(
      const std::string& checkpoint_bytes) MCM_EXCLUDES(commit_mu_);

  /// The store-wide interning table shared by all versions (and by working
  /// databases built from them). Internally synchronized.
  SymbolTable& symbols() MCM_LIFETIME_BOUND { return symbols_; }
  const SymbolTable& symbols() const MCM_LIFETIME_BOUND { return symbols_; }

 private:
  /// A validated op with its tuple bound to interned Values.
  struct BoundOp {
    UpdateOpKind kind;
    std::string relation;
    uint32_t arity = 0;
    Tuple tuple;
  };

  Status ValidateAndBind(const UpdateBatch& batch, const EdbVersion& base,
                         std::vector<BoundOp>* bound)
      MCM_REQUIRES(commit_mu_);
  std::shared_ptr<const EdbVersion> BuildVersion(
      const EdbVersion& base, const std::vector<BoundOp>& bound,
      uint64_t epoch) const MCM_REQUIRES(commit_mu_);

  static std::string SerializeBatch(uint64_t seq, const UpdateBatch& batch);
  static Status ParseBatchPayload(const std::string& payload, uint64_t* seq,
                                  UpdateBatch* batch);
  std::string SerializeCheckpoint(const EdbVersion& tip) const
      MCM_REQUIRES(commit_mu_);
  /// Parses `content` and interns its symbol section; only valid on a
  /// fresh (empty-table) store, i.e. during Recover.
  Result<std::shared_ptr<const EdbVersion>> LoadCheckpoint(
      const std::string& content) MCM_REQUIRES(commit_mu_);

  void SetTip(std::shared_ptr<const EdbVersion> v) MCM_REQUIRES(commit_mu_);

  Options options_;
  SymbolTable symbols_;

  /// The single-writer capability: serializes Commit / Checkpoint / Recover
  /// (lock-order rank 5; acquired before tip_mu_, SymbolTable::mu_, and
  /// FaultInjection::mu_; may be acquired under Follower::mu_, rank 4).
  util::Mutex commit_mu_ MCM_ACQUIRED_AFTER(util::kLockRankStoreCommit)
      MCM_ACQUIRED_BEFORE(util::kLockRankStoreTip);
  /// WAL single-writer discipline, statically enforced: the handle itself
  /// and every append through it require commit_mu_, so a concurrent
  /// Append/Checkpoint outside the commit path cannot compile.
  bool recovered_ MCM_GUARDED_BY(commit_mu_) = false;
  std::unique_ptr<WalWriter> wal_ MCM_GUARDED_BY(commit_mu_)
      MCM_PT_GUARDED_BY(commit_mu_);

  mutable util::Mutex tip_mu_
      MCM_ACQUIRED_AFTER(commit_mu_, util::kLockRankStoreTip)
          MCM_ACQUIRED_BEFORE(util::kLockRankSymbols);
  std::shared_ptr<const EdbVersion> tip_ MCM_GUARDED_BY(tip_mu_);
};

}  // namespace mcm
