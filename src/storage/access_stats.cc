#include "storage/access_stats.h"

#include "util/string_util.h"

namespace mcm {

std::string AccessStats::ToString() const {
  return StringPrintf(
      "reads=%llu inserts=%llu attempts=%llu scans=%llu probes=%llu",
      static_cast<unsigned long long>(tuples_read),
      static_cast<unsigned long long>(tuples_inserted),
      static_cast<unsigned long long>(insert_attempts),
      static_cast<unsigned long long>(scans),
      static_cast<unsigned long long>(probes));
}

}  // namespace mcm
