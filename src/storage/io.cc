#include "storage/io.h"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <charconv>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>

#include "util/fault_injection.h"
#include "util/string_util.h"

namespace mcm {

namespace {

bool ParseInt(std::string_view s, int64_t* out) {
  if (s.empty()) return false;
  const char* begin = s.data();
  const char* end = s.data() + s.size();
  auto [ptr, ec] = std::from_chars(begin, end, *out);
  return ec == std::errc() && ptr == end;
}

}  // namespace

Status LoadRelationTsvStream(Database* db, const std::string& name,
                             std::istream& in, const std::string& origin) {
  Relation* rel = db->Find(name);
  std::string line;
  size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    std::string_view trimmed = Trim(line);
    if (trimmed.empty() || trimmed[0] == '#') continue;
    std::vector<std::string> fields = Split(trimmed, '\t');
    if (rel == nullptr) {
      rel = db->GetOrCreateRelation(name,
                                    static_cast<uint32_t>(fields.size()));
    }
    if (fields.size() != rel->arity()) {
      return Status::InvalidArgument(
          origin + ":" + std::to_string(line_no) + ": expected " +
          std::to_string(rel->arity()) + " fields, got " +
          std::to_string(fields.size()));
    }
    Tuple t(rel->arity());
    for (uint32_t i = 0; i < rel->arity(); ++i) {
      int64_t v;
      if (ParseInt(fields[i], &v)) {
        t[i] = v;
      } else {
        t[i] = db->symbols().Intern(fields[i]);
      }
    }
    rel->Insert(t);
  }
  if (rel == nullptr) {
    // Empty file: create a relation only if it already exists elsewhere —
    // we cannot guess the arity, so report it.
    return Status::InvalidArgument(origin +
                                   ": empty file and relation '" + name +
                                   "' does not exist (arity unknown)");
  }
  return Status::OK();
}

Status LoadRelationTsv(Database* db, const std::string& name,
                       const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    return Status::NotFound("cannot open '" + path + "'");
  }
  return LoadRelationTsvStream(db, name, in, path);
}

Status SaveRelationTsvStream(const Database& db, const std::string& name,
                             std::ostream& out, bool resolve_symbols) {
  const Relation* rel = db.Find(name);
  if (rel == nullptr) {
    return Status::NotFound("relation '" + name + "' not found");
  }
  for (const Tuple& t : rel->TuplesUnchecked()) {
    for (uint32_t i = 0; i < t.arity(); ++i) {
      if (i > 0) out << '\t';
      if (resolve_symbols && db.symbols().Contains(t[i])) {
        out << db.symbols().Resolve(t[i]);
      } else {
        out << t[i];
      }
    }
    out << '\n';
  }
  return Status::OK();
}

Status SaveRelationTsv(const Database& db, const std::string& name,
                       const std::string& path, bool resolve_symbols) {
  std::ofstream out(path);
  if (!out) {
    return Status::InvalidArgument("cannot write '" + path + "'");
  }
  return SaveRelationTsvStream(db, name, out, resolve_symbols);
}

namespace {

Status ErrnoStatus(const std::string& what) {
  return Status::Internal(what + ": " + std::strerror(errno));
}

Status WriteAll(int fd, std::string_view contents) {
  const char* p = contents.data();
  size_t left = contents.size();
  while (left > 0) {
    ssize_t n = ::write(fd, p, left);
    if (n < 0) {
      if (errno == EINTR) continue;
      return ErrnoStatus("write");
    }
    p += n;
    left -= static_cast<size_t>(n);
  }
  return Status::OK();
}

}  // namespace

Status SyncParentDir(const std::string& path) {
  size_t slash = path.find_last_of('/');
  std::string dir = slash == std::string::npos ? "." : path.substr(0, slash);
  if (dir.empty()) dir = "/";
  int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY | O_CLOEXEC);
  if (fd < 0) return ErrnoStatus("open dir '" + dir + "'");
  Status st = ::fsync(fd) == 0 ? Status::OK() : ErrnoStatus("fsync dir");
  ::close(fd);
  return st;
}

Status WriteFileAtomic(const std::string& path, std::string_view contents) {
  const std::string tmp = path + ".tmp";
  int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC,
                  0644);
  if (fd < 0) return ErrnoStatus("open '" + tmp + "'");

  // Explicit Check calls instead of MCM_FAULT_POINT: an early macro return
  // would leak the fd and the temp file.
  auto& faults = util::FaultInjection::Instance();
  Status st = faults.Check("io/atomic/write");
  if (st.ok()) st = WriteAll(fd, contents);
  if (st.ok()) st = faults.Check("io/atomic/fsync");
  if (st.ok() && ::fsync(fd) != 0) st = ErrnoStatus("fsync '" + tmp + "'");
  ::close(fd);
  if (st.ok()) st = faults.Check("io/atomic/rename");
  if (st.ok() && ::rename(tmp.c_str(), path.c_str()) != 0) {
    st = ErrnoStatus("rename '" + tmp + "' -> '" + path + "'");
  }
  if (!st.ok()) {
    ::unlink(tmp.c_str());
    return st;
  }
  return SyncParentDir(path);
}

Status ReadFileToString(const std::string& path, std::string* out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::NotFound("cannot open '" + path + "'");
  std::ostringstream ss;
  ss << in.rdbuf();
  if (in.bad()) return Status::Internal("read error on '" + path + "'");
  *out = ss.str();
  return Status::OK();
}

}  // namespace mcm
