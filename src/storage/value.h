// Domain values.
//
// Following the design of compiled Datalog engines (e.g. Souffle's
// RamDomain), every domain value is a 64-bit integer. String constants are
// interned in a SymbolTable and represented by their symbol id, so joins and
// hashing never touch string data.
#pragma once

#include <cstdint>
#include <functional>

namespace mcm {

/// A single domain value: either a plain integer or an interned symbol id.
/// The engine does not distinguish the two at runtime; the distinction lives
/// in the schema / printing layer.
using Value = int64_t;

/// 64-bit mixer used for tuple hashing (xxhash/wyhash-style avalanche).
inline uint64_t HashMix64(uint64_t x) {
  x ^= x >> 33;
  x *= 0xff51afd7ed558ccdULL;
  x ^= x >> 33;
  x *= 0xc4ceb9fe1a85ec53ULL;
  x ^= x >> 33;
  return x;
}

/// Combine a hash with a new value (boost::hash_combine flavour, 64-bit).
inline uint64_t HashCombine(uint64_t seed, uint64_t v) {
  return seed ^ (HashMix64(v) + 0x9e3779b97f4a7c15ULL + (seed << 6) +
                 (seed >> 2));
}

}  // namespace mcm
