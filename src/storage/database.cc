#include "storage/database.h"

namespace mcm {

Result<Relation*> Database::CreateRelation(const std::string& name,
                                           uint32_t arity) {
  if (relations_.count(name) > 0) {
    return Status::AlreadyExists("relation '" + name + "' already exists");
  }
  auto rel = std::make_unique<Relation>(name, arity, &stats_);
  Relation* ptr = rel.get();
  relations_.emplace(name, std::move(rel));
  return ptr;
}

Result<Relation*> Database::AttachBorrowed(const std::string& name,
                                           std::shared_ptr<const Relation> base) {
  if (relations_.count(name) > 0) {
    return Status::AlreadyExists("relation '" + name + "' already exists");
  }
  auto rel = std::make_unique<Relation>(
      Relation::Borrow(std::move(base), &stats_));
  Relation* ptr = rel.get();
  relations_.emplace(name, std::move(rel));
  return ptr;
}

Relation* Database::GetOrCreateRelation(const std::string& name,
                                        uint32_t arity) {
  auto it = relations_.find(name);
  if (it != relations_.end()) return it->second.get();
  auto rel = std::make_unique<Relation>(name, arity, &stats_);
  Relation* ptr = rel.get();
  relations_.emplace(name, std::move(rel));
  return ptr;
}

Relation* Database::Find(const std::string& name) {
  auto it = relations_.find(name);
  return it == relations_.end() ? nullptr : it->second.get();
}

const Relation* Database::Find(const std::string& name) const {
  auto it = relations_.find(name);
  return it == relations_.end() ? nullptr : it->second.get();
}

Result<Relation*> Database::Get(const std::string& name) {
  Relation* rel = Find(name);
  if (rel == nullptr) {
    return Status::NotFound("relation '" + name + "' not found");
  }
  return rel;
}

bool Database::Drop(const std::string& name) {
  return relations_.erase(name) > 0;
}

std::vector<std::string> Database::RelationNames() const {
  std::vector<std::string> names;
  names.reserve(relations_.size());
  for (const auto& [name, rel] : relations_) {
    (void)rel;
    names.push_back(name);
  }
  return names;
}

size_t Database::TotalTuples() const {
  size_t total = 0;
  for (const auto& [name, rel] : relations_) {
    (void)name;
    total += rel->size();
  }
  return total;
}

Status Database::SnapshotInto(Database* dst) const {
  for (const auto& [name, rel] : relations_) {
    Relation* copy = dst->Find(name);
    if (copy == nullptr) {
      copy = dst->GetOrCreateRelation(name, rel->arity());
    } else if (copy->arity() != rel->arity()) {
      return Status::InvalidArgument(
          "snapshot arity mismatch for relation '" + name + "'");
    }
    for (const Tuple& t : rel->TuplesUnchecked()) copy->Insert(t);
  }
  return Status::OK();
}

size_t Database::ApproxBytes() const {
  // Per tuple: the Value payload plus ~32 bytes of hash-set/index overhead
  // (bucket entry + id vectors), a deliberately round estimate.
  constexpr size_t kPerTupleOverhead = 32;
  size_t total = 0;
  for (const auto& [name, rel] : relations_) {
    (void)name;
    total += rel->size() * (rel->arity() * sizeof(Value) + kPerTupleOverhead);
  }
  return total;
}

}  // namespace mcm
