// Annotated mutex types and the global lock-order registry.
//
// std::mutex / std::lock_guard carry no thread-safety attributes under
// libstdc++, so Clang's analysis cannot follow their acquisitions. These
// thin wrappers restore visibility: `Mutex` / `SharedMutex` are declared
// MCM_CAPABILITY, and the scoped lockers (`MutexLock`, `ReaderMutexLock`,
// `WriterMutexLock`) are MCM_SCOPED_CAPABILITY, so
//
//   MutexLock lock(mu_);
//   ++guarded_field_;        // proven: mu_ is held here
//
// type-checks, while the same access outside the scope is a compile error
// under -DMCM_THREAD_SAFETY=ON. The wrappers are zero-cost: each is exactly
// the std primitive plus attributes.
//
// ---------------------------------------------------------------------------
// Lock-order registry (the capability hierarchy)
//
// Every long-lived mutex in the concurrent stack is assigned a rank; a
// thread may only acquire a mutex of a *higher* rank than any it already
// holds. The ranks, outermost first:
//
//   rank | capability                      | protects
//   -----+---------------------------------+---------------------------------
//     1  | service::QueryService::mu_      | admission queue, worker state,
//        |                                 | service stats
//     2  | service::CircuitBreaker::mu_    | per-signature breaker entries
//        |                                 | (acquired under rank 1 by
//        |                                 | QueryService::stats())
//     3  | ReplicaSupervisor::mu_          | follower-fleet slot state
//        |                                 | (phase, backoff schedule, fleet
//        |                                 | tip watermark); held across a
//        |                                 | slot's Sync/Promote, which take
//        |                                 | the follower (rank 4) and store
//        |                                 | (ranks 5-6) locks beneath it
//     4  | Follower::mu_                   | replication follower health
//        |                                 | (applied/primary-tip epochs,
//        |                                 | sticky halt status); may be held
//        |                                 | while the follower's store
//        |                                 | commits (rank 5)
//     5  | VersionedStore::commit_mu_      | the single-writer commit path:
//        |                                 | WAL handle, recovered_ flag
//     6  | VersionedStore::tip_mu_         | the tip version pointer
//        |                                 | (acquired under rank 5 by
//        |                                 | Commit/Checkpoint/Recover)
//     7  | SymbolTable::mu_                | interning table (leaf; acquired
//        |                                 | under rank 5 while binding)
//     8  | util::FaultInjection::mu_       | fault-site registry (leaf;
//        |                                 | acquired under rank 5 via
//        |                                 | MCM_FAULT_POINT in WAL and
//        |                                 | checkpoint code)
//     9  | InProcessPipe::mu_              | replication transport byte
//        |                                 | queue (leaf; never held while
//        |                                 | any other capability is)
//
// The ranks are encoded as never-locked marker capabilities (`LockRank`
// objects below) chained with MCM_ACQUIRED_AFTER; each real mutex then
// declares MCM_ACQUIRED_AFTER(its rank) and MCM_ACQUIRED_BEFORE(the next
// rank). Acquiring against the declared order — e.g. taking
// QueryService::mu_ while holding CircuitBreaker::mu_ — is a compile error
// under -Wthread-safety-beta, which makes the store -> service -> breaker
// acquisition discipline a static deadlock audit. New mutexes MUST be
// slotted into this table (add a rank, chain the markers) before they are
// acquired while any registered lock is held.
#pragma once

#include <condition_variable>
#include <mutex>
#include <shared_mutex>

#include "util/thread_annotations.h"

namespace mcm::util {

/// \brief Annotated std::mutex. Prefer the scoped `MutexLock`; the manual
/// Lock/Unlock surface exists for the rare staged-locking paths.
class MCM_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() MCM_ACQUIRE() { mu_.lock(); }
  void Unlock() MCM_RELEASE() { mu_.unlock(); }
  bool TryLock() MCM_TRY_ACQUIRE(true) { return mu_.try_lock(); }

  /// The wrapped primitive, for condition_variable interop only (use
  /// MutexLock::Wait rather than touching this directly).
  std::mutex& Native() { return mu_; }

 private:
  std::mutex mu_;
};

/// \brief Annotated std::shared_mutex (reader/writer capability).
class MCM_CAPABILITY("shared_mutex") SharedMutex {
 public:
  SharedMutex() = default;
  SharedMutex(const SharedMutex&) = delete;
  SharedMutex& operator=(const SharedMutex&) = delete;

  void Lock() MCM_ACQUIRE() { mu_.lock(); }
  void Unlock() MCM_RELEASE() { mu_.unlock(); }
  void LockShared() MCM_ACQUIRE_SHARED() { mu_.lock_shared(); }
  void UnlockShared() MCM_RELEASE_SHARED() { mu_.unlock_shared(); }

 private:
  std::shared_mutex mu_;
};

/// \brief Scoped exclusive lock over a Mutex (annotated std::unique_lock).
///
/// Supports early Unlock()/re-Lock() and condition-variable waits; the
/// destructor releases only if still held. The analysis tracks the held
/// state across all of it.
class MCM_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) MCM_ACQUIRE(mu) : lock_(mu.Native()) {}
  ~MutexLock() MCM_RELEASE() {}  // unique_lock releases only if still held

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

  void Lock() MCM_ACQUIRE() { lock_.lock(); }
  void Unlock() MCM_RELEASE() { lock_.unlock(); }

  /// Wait on `cv`, releasing the mutex while blocked and reacquiring it
  /// before returning — so the capability is held on both sides, and
  /// predicate re-checks stay in the caller where the analysis can see
  /// them:
  ///
  ///   MutexLock lock(mu_);
  ///   while (!guarded_condition_) lock.Wait(cv_);
  void Wait(std::condition_variable& cv) { cv.wait(lock_); }

 private:
  std::unique_lock<std::mutex> lock_;
};

/// \brief Scoped shared (reader) lock over a SharedMutex.
class MCM_SCOPED_CAPABILITY ReaderMutexLock {
 public:
  explicit ReaderMutexLock(SharedMutex& mu) MCM_ACQUIRE_SHARED(mu) : mu_(mu) {
    mu_.LockShared();
  }
  ~ReaderMutexLock() MCM_RELEASE() { mu_.UnlockShared(); }

  ReaderMutexLock(const ReaderMutexLock&) = delete;
  ReaderMutexLock& operator=(const ReaderMutexLock&) = delete;

 private:
  SharedMutex& mu_;
};

/// \brief Scoped exclusive (writer) lock over a SharedMutex.
class MCM_SCOPED_CAPABILITY WriterMutexLock {
 public:
  explicit WriterMutexLock(SharedMutex& mu) MCM_ACQUIRE(mu) : mu_(mu) {
    mu_.Lock();
  }
  ~WriterMutexLock() MCM_RELEASE() { mu_.Unlock(); }

  WriterMutexLock(const WriterMutexLock&) = delete;
  WriterMutexLock& operator=(const WriterMutexLock&) = delete;

 private:
  SharedMutex& mu_;
};

/// \brief Never-locked marker capability encoding one rank of the global
/// lock order (see the registry table in the header comment).
///
/// Real mutexes slot between two markers with MCM_ACQUIRED_AFTER /
/// MCM_ACQUIRED_BEFORE; the markers themselves form a chain, so the order
/// relation is transitive across classes that cannot name each other's
/// private members.
struct MCM_CAPABILITY("lock_rank") LockRank {};

/// Rank 1: service::QueryService::mu_.
inline LockRank kLockRankService;
/// Rank 2: service::CircuitBreaker::mu_.
inline LockRank kLockRankBreaker MCM_ACQUIRED_AFTER(kLockRankService);
/// Rank 3: ReplicaSupervisor::mu_ (fleet slot state).
inline LockRank kLockRankSupervisor MCM_ACQUIRED_AFTER(kLockRankBreaker);
/// Rank 4: Follower::mu_ (replication health / halt state).
inline LockRank kLockRankFollower MCM_ACQUIRED_AFTER(kLockRankSupervisor);
/// Rank 5: VersionedStore::commit_mu_ (the single-writer capability).
inline LockRank kLockRankStoreCommit MCM_ACQUIRED_AFTER(kLockRankFollower);
/// Rank 6: VersionedStore::tip_mu_.
inline LockRank kLockRankStoreTip MCM_ACQUIRED_AFTER(kLockRankStoreCommit);
/// Rank 7: SymbolTable::mu_ (leaf).
inline LockRank kLockRankSymbols MCM_ACQUIRED_AFTER(kLockRankStoreTip);
/// Rank 8: util::FaultInjection::mu_ (leaf).
inline LockRank kLockRankFaultInjection MCM_ACQUIRED_AFTER(kLockRankSymbols);
/// Rank 9: replication transport buffers (InProcessPipe::mu_, leaf).
inline LockRank kLockRankTransport MCM_ACQUIRED_AFTER(kLockRankFaultInjection);

}  // namespace mcm::util
