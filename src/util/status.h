// Status and Result<T>: lightweight error propagation in the style of
// Arrow/RocksDB. The engine avoids exceptions on hot paths; fallible
// operations return Status (or Result<T>) and callers either handle the
// error or propagate it with MCM_RETURN_NOT_OK.
#pragma once

#include <cassert>
#include <optional>
#include <string>
#include <string_view>
#include <utility>

#include "util/lifetime_annotations.h"

namespace mcm {

/// Machine-readable error category carried by a Status.
enum class StatusCode : int {
  kOk = 0,
  kInvalidArgument = 1,   ///< Caller passed a bad value (arity, name, range).
  kNotFound = 2,          ///< Named entity (relation, predicate) is absent.
  kAlreadyExists = 3,     ///< Attempt to redefine an existing entity.
  kParseError = 4,        ///< Datalog text could not be parsed.
  kUnsafe = 5,            ///< A fixpoint computation exceeded its safety cap
                          ///< (e.g. counting on a cyclic magic graph).
  kUnsupported = 6,       ///< Feature outside the implemented fragment.
  kInternal = 7,          ///< Invariant violation inside the engine.
  kDeadlineExceeded = 8,  ///< Wall-clock deadline passed (execution governor).
  kCancelled = 9,         ///< Cooperative cancellation was requested.
  kUnavailable = 10,      ///< Service overloaded or shutting down; the
                          ///< canonical client-retryable condition.
  kDataLoss = 11,         ///< Durable state was lost or corrupted (torn WAL
                          ///< tail, bad checkpoint CRC). Never transient:
                          ///< retrying cannot bring the bytes back.
  kFailedPrecondition = 12,  ///< The system is in a state the operation
                             ///< cannot proceed from and a retry will not
                             ///< fix (e.g. a replication follower that fell
                             ///< behind the primary's retained WAL and must
                             ///< be reseeded before it can tail again).
};

/// Human-readable name of a StatusCode ("OK", "InvalidArgument", ...).
std::string_view StatusCodeToString(StatusCode code);

/// \brief Outcome of a fallible operation: a code plus a message.
///
/// A default-constructed Status is OK. Statuses are cheap to copy in the
/// error case and free in the OK case (no allocation).
///
/// [[nodiscard]] at class scope: every function returning Status (or
/// Result) is nodiscard without per-declaration annotations, so a dropped
/// error anywhere in the codebase is a compile warning (-Werror in CI).
/// Intentionally ignored statuses must say so: `(void)store.Checkpoint();`.
class [[nodiscard]] Status {
 public:
  Status() = default;
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status ParseError(std::string msg) {
    return Status(StatusCode::kParseError, std::move(msg));
  }
  static Status Unsafe(std::string msg) {
    return Status(StatusCode::kUnsafe, std::move(msg));
  }
  static Status Unsupported(std::string msg) {
    return Status(StatusCode::kUnsupported, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }
  static Status Cancelled(std::string msg) {
    return Status(StatusCode::kCancelled, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }
  static Status DataLoss(std::string msg) {
    return Status(StatusCode::kDataLoss, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const MCM_LIFETIME_BOUND { return message_; }

  bool IsUnsafe() const { return code_ == StatusCode::kUnsafe; }
  bool IsNotFound() const { return code_ == StatusCode::kNotFound; }
  bool IsParseError() const { return code_ == StatusCode::kParseError; }
  bool IsDeadlineExceeded() const {
    return code_ == StatusCode::kDeadlineExceeded;
  }
  bool IsCancelled() const { return code_ == StatusCode::kCancelled; }
  bool IsUnavailable() const { return code_ == StatusCode::kUnavailable; }
  bool IsDataLoss() const { return code_ == StatusCode::kDataLoss; }
  bool IsFailedPrecondition() const {
    return code_ == StatusCode::kFailedPrecondition;
  }

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const;

 private:
  StatusCode code_ = StatusCode::kOk;
  std::string message_;
};

/// \brief Either a value of type T or an error Status.
///
/// Result is used by APIs that compute a value but can fail, e.g.
/// `Result<Program> Parse(std::string_view)`. Access the value only after
/// checking ok(). Class-level [[nodiscard]] — see Status above.
template <typename T>
class [[nodiscard]] Result {
 public:
  /* implicit */ Result(T value) : value_(std::move(value)) {}
  /* implicit */ Result(Status status) : status_(std::move(status)) {
    assert(!status_.ok() && "Result constructed from OK status without value");
  }

  bool ok() const { return status_.ok(); }
  const Status& status() const MCM_LIFETIME_BOUND { return status_; }

  // Value accessors are lifetimebound: binding a reference into a
  // *temporary* Result (`const T& x = Compute().value();`) is the classic
  // dangling shape and a compile diagnostic under the lifetime gate. Copy
  // or move out of temporaries instead.
  T& value() & MCM_LIFETIME_BOUND {
    assert(ok());
    return *value_;
  }
  const T& value() const& MCM_LIFETIME_BOUND {
    assert(ok());
    return *value_;
  }
  T&& value() && MCM_LIFETIME_BOUND {
    assert(ok());
    return std::move(*value_);
  }

  T& operator*() & MCM_LIFETIME_BOUND { return value(); }
  const T& operator*() const& MCM_LIFETIME_BOUND { return value(); }
  T* operator->() MCM_LIFETIME_BOUND { return &value(); }
  const T* operator->() const MCM_LIFETIME_BOUND { return &value(); }

  /// Value if ok, otherwise `fallback`.
  T ValueOr(T fallback) const {
    return ok() ? *value_ : std::move(fallback);
  }

 private:
  Status status_;
  std::optional<T> value_;
};

}  // namespace mcm

/// Propagate a non-OK Status out of the enclosing function.
#define MCM_RETURN_NOT_OK(expr)            \
  do {                                     \
    ::mcm::Status _st = (expr);            \
    if (!_st.ok()) return _st;             \
  } while (0)

/// Assign the value of a Result to `lhs`, or propagate its error Status.
#define MCM_ASSIGN_OR_RETURN(lhs, expr)    \
  auto MCM_CONCAT_(_res_, __LINE__) = (expr);              \
  if (!MCM_CONCAT_(_res_, __LINE__).ok())                  \
    return MCM_CONCAT_(_res_, __LINE__).status();          \
  lhs = std::move(MCM_CONCAT_(_res_, __LINE__)).value()

#define MCM_CONCAT_IMPL_(a, b) a##b
#define MCM_CONCAT_(a, b) MCM_CONCAT_IMPL_(a, b)
