// Small string helpers shared by the parser, printers and CLI examples.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace mcm {

/// Join `parts` with `sep` ("a", "b" -> "a, b").
std::string Join(const std::vector<std::string>& parts, std::string_view sep);

/// Split `s` on `delim`, trimming nothing; empty fields are preserved.
std::vector<std::string> Split(std::string_view s, char delim);

/// Strip ASCII whitespace from both ends.
std::string_view Trim(std::string_view s);

/// True if `s` starts with `prefix`.
bool StartsWith(std::string_view s, std::string_view prefix);

/// printf-style formatting into a std::string.
std::string StringPrintf(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

}  // namespace mcm
