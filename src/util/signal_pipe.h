// Self-pipe plumbing for signal-safe shutdown and cross-thread wakeups.
//
// A poll()-based readiness loop cannot take a lock, allocate, or block when
// a SIGTERM lands — the only async-signal-safe way to get the event into
// the loop is the classic self-pipe trick: the handler write()s one byte
// into a non-blocking pipe whose read end the loop polls like any other fd.
// Two small classes package that:
//
//   * SignalPipe — process-wide singleton. Install() registers a handler
//     for the given signals (SIGTERM/SIGINT for mcm-serve) that records the
//     signal number and writes to the pipe. The serving loop polls fd() and
//     treats readability as "begin graceful drain". Installing is
//     idempotent; the singleton is never destroyed (handlers may fire
//     during static teardown).
//
//   * WakeupPipe — a private, non-signal wakeup channel: worker threads
//     call Notify() (async-signal-safe too: one write() on a non-blocking
//     fd) to rouse a poll loop, which Drain()s the bytes and re-checks its
//     own state. Used by the TCP front end to learn that a QueryService
//     ticket completed without polling futures on a timer.
//
// Thread safety: all operations on both classes are safe from any thread
// and from signal handlers (Notify/handler write only). Drain() belongs to
// the single loop thread that owns the read end.
#pragma once

#include <atomic>
#include <initializer_list>

#include "util/status.h"

namespace mcm::util {

/// \brief One non-blocking pipe: Notify() from anywhere, poll read_fd() in
/// a readiness loop, Drain() on the loop thread.
class WakeupPipe {
 public:
  /// Creates the pipe; `ok()` is false (with the reason) if the OS refused.
  WakeupPipe();
  ~WakeupPipe();

  WakeupPipe(const WakeupPipe&) = delete;
  WakeupPipe& operator=(const WakeupPipe&) = delete;

  [[nodiscard]] const Status& status() const { return status_; }
  bool ok() const { return status_.ok(); }

  /// The fd to include in poll() with POLLIN.
  int read_fd() const { return fds_[0]; }

  /// Write one byte (non-blocking; a full pipe already guarantees the loop
  /// will wake, so EAGAIN is success). Async-signal-safe.
  void Notify();

  /// Read and discard everything buffered. Loop-thread only.
  void Drain();

 private:
  int fds_[2] = {-1, -1};
  Status status_;
};

/// \brief Process-wide signal → pipe bridge for graceful shutdown.
class SignalPipe {
 public:
  /// The singleton (leaked on purpose: a handler must never race a dtor).
  static SignalPipe& Instance();

  /// Register the self-pipe handler for each signal in `signals`
  /// (e.g. {SIGTERM, SIGINT}). Idempotent; later calls add signals.
  [[nodiscard]] Status Install(std::initializer_list<int> signals);

  /// The fd a serving loop polls for "a shutdown signal landed".
  int fd() const { return pipe_.read_fd(); }

  /// True once any installed signal has been delivered.
  bool triggered() const {
    return last_signal_.load(std::memory_order_acquire) != 0;
  }

  /// The most recent signal number (0 = none yet).
  int last_signal() const {
    return last_signal_.load(std::memory_order_acquire);
  }

  /// Simulate a delivery (tests): records `sig` and notifies the pipe
  /// exactly as the real handler would.
  void RaiseForTest(int sig);

  /// Clear the triggered state and drain the pipe (tests; the fd stays
  /// valid and installed handlers stay installed).
  void Reset();

 private:
  SignalPipe() = default;
  static void Handler(int sig);

  WakeupPipe pipe_;
  std::atomic<int> last_signal_{0};
};

}  // namespace mcm::util
