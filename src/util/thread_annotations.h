// Clang Thread Safety Analysis capability macros.
//
// These wrap Clang's `-Wthread-safety` attributes so the locking protocol of
// the concurrent layers (storage/versioned_store, storage/wal, service/,
// util/fault_injection, storage/symbol_table) is *proven* at compile time:
// every mutex-guarded field declares its capability with MCM_GUARDED_BY,
// every method that must run under a lock declares MCM_REQUIRES, and lock
// acquisition order is part of the type system via MCM_ACQUIRED_AFTER /
// MCM_ACQUIRED_BEFORE. Under any non-Clang compiler every macro expands to
// nothing, so GCC builds are unaffected.
//
// Build mode: configure with -DMCM_THREAD_SAFETY=ON (Clang only) to compile
// with `-Wthread-safety -Wthread-safety-beta` promoted to errors; CI gates
// on it, and tests/threadsafety/ holds negative-compile cases proving the
// annotations reject unguarded access and lock-order inversions.
//
// The global capability hierarchy (the lock-order registry) lives in
// util/mutex.h next to the annotated mutex types; DESIGN.md §5g documents
// the rules, including when MCM_NO_THREAD_SAFETY_ANALYSIS is acceptable.
#pragma once

#if defined(__clang__) && defined(__has_attribute)
#if __has_attribute(capability)
#define MCM_THREAD_ANNOTATION_(x) __attribute__((x))
#endif
#endif
#ifndef MCM_THREAD_ANNOTATION_
#define MCM_THREAD_ANNOTATION_(x)  // no-op off Clang
#endif

/// Marks a type as a lockable capability (e.g. a mutex wrapper). The string
/// names the capability kind in diagnostics ("mutex", "shared_mutex", ...).
#define MCM_CAPABILITY(x) MCM_THREAD_ANNOTATION_(capability(x))

/// Marks an RAII type that acquires a capability in its constructor and
/// releases it in its destructor (std::lock_guard-shaped classes).
#define MCM_SCOPED_CAPABILITY MCM_THREAD_ANNOTATION_(scoped_lockable)

/// Field may only be read/written while holding the given capability
/// (shared for reads, exclusive for writes).
#define MCM_GUARDED_BY(x) MCM_THREAD_ANNOTATION_(guarded_by(x))

/// Pointer field whose *pointee* may only be accessed while holding the
/// given capability. Understands smart pointers: `ptr->Method()` on a
/// `std::unique_ptr` member requires the capability.
#define MCM_PT_GUARDED_BY(x) MCM_THREAD_ANNOTATION_(pt_guarded_by(x))

/// Lock-order edges: this capability must be acquired after / before the
/// listed ones. Violations are compile errors under -Wthread-safety-beta —
/// a static deadlock audit over the declared acquisition order.
#define MCM_ACQUIRED_AFTER(...) MCM_THREAD_ANNOTATION_(acquired_after(__VA_ARGS__))
#define MCM_ACQUIRED_BEFORE(...) MCM_THREAD_ANNOTATION_(acquired_before(__VA_ARGS__))

/// Function requires the capability to be held (exclusively / shared) by
/// the caller on entry; it is neither acquired nor released.
#define MCM_REQUIRES(...) MCM_THREAD_ANNOTATION_(requires_capability(__VA_ARGS__))
#define MCM_REQUIRES_SHARED(...) \
  MCM_THREAD_ANNOTATION_(requires_shared_capability(__VA_ARGS__))

/// Function acquires the capability (exclusively / shared) and holds it on
/// return; the caller must not already hold it.
#define MCM_ACQUIRE(...) MCM_THREAD_ANNOTATION_(acquire_capability(__VA_ARGS__))
#define MCM_ACQUIRE_SHARED(...) \
  MCM_THREAD_ANNOTATION_(acquire_shared_capability(__VA_ARGS__))

/// Function releases the capability; the caller must hold it on entry.
#define MCM_RELEASE(...) MCM_THREAD_ANNOTATION_(release_capability(__VA_ARGS__))
#define MCM_RELEASE_SHARED(...) \
  MCM_THREAD_ANNOTATION_(release_shared_capability(__VA_ARGS__))

/// Function attempts the acquisition and returns the first argument on
/// success: MCM_TRY_ACQUIRE(true) or MCM_TRY_ACQUIRE(true, mu).
#define MCM_TRY_ACQUIRE(...) \
  MCM_THREAD_ANNOTATION_(try_acquire_capability(__VA_ARGS__))

/// Caller must NOT hold the capability (anti-reentrancy / deadlock guard).
#define MCM_EXCLUDES(...) MCM_THREAD_ANNOTATION_(locks_excluded(__VA_ARGS__))

/// Runtime assertion that the capability is held (for code the analysis
/// cannot follow, e.g. acquisition through an opaque callback).
#define MCM_ASSERT_CAPABILITY(x) MCM_THREAD_ANNOTATION_(assert_capability(x))

/// Function returns a reference to the given capability (accessors).
#define MCM_RETURN_CAPABILITY(x) MCM_THREAD_ANNOTATION_(lock_returned(x))

/// Escape hatch: disable the analysis for one function. Every use MUST
/// carry a comment justifying why the code is safe despite the analysis
/// being unable to prove it (see DESIGN.md §5g for the rules); bare
/// occurrences are rejected in review.
#define MCM_NO_THREAD_SAFETY_ANALYSIS \
  MCM_THREAD_ANNOTATION_(no_thread_safety_analysis)
