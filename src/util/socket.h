// Minimal POSIX TCP wrapper for the replication transport: an RAII socket
// with poll()-based readiness deadlines, and a listener for accepting
// follower connections. Deliberately tiny — no readiness loop framework, no
// buffering, no new dependencies; the replication layer's ByteSink /
// ByteSource contract (storage/replication.h) is the consumer and defines
// the error taxonomy:
//
//   * a peer that is gone (reset, refused, broken pipe) is kUnavailable —
//     the transport-level "retry by reconnecting" verdict;
//   * a deadline that expires waiting for readiness is kUnavailable on the
//     read path ("nothing buffered right now") and kDeadlineExceeded on
//     connect/accept (the operation itself timed out);
//   * an orderly shutdown by the peer is an empty read, never an error —
//     whether the stream ended *cleanly* is the frame decoder's verdict.
//
// All operations run the socket non-blocking and wait for readiness with
// poll(), so a hung peer can never wedge a supervision thread beyond its
// deadline. Writes use MSG_NOSIGNAL: a dead peer yields a Status, not
// SIGPIPE.
//
// Thread safety: a Socket (and a Listener) belongs to one thread at a time;
// there is no internal locking. Distinct sockets are independent.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>

#include "util/status.h"

namespace mcm::util {

/// \brief RAII wrapper over one connected (or accepted) TCP socket fd.
class Socket {
 public:
  Socket() = default;
  /// Adopts `fd` (takes ownership; -1 = invalid).
  explicit Socket(int fd) : fd_(fd) {}
  ~Socket() { Close(); }

  Socket(Socket&& other) noexcept : fd_(other.fd_) { other.fd_ = -1; }
  Socket& operator=(Socket&& other) noexcept;
  Socket(const Socket&) = delete;
  Socket& operator=(const Socket&) = delete;

  /// Connect to `host:port` (numeric IPv4 host, e.g. "127.0.0.1") within
  /// `timeout_ms`. kDeadlineExceeded when the connect does not complete in
  /// time; kUnavailable when the peer refuses or resets.
  [[nodiscard]] static Result<Socket> Connect(const std::string& host,
                                              uint16_t port,
                                              uint64_t timeout_ms);

  bool valid() const { return fd_ >= 0; }
  int fd() const { return fd_; }
  void Close();

  /// Write all of `bytes`, waiting up to `timeout_ms` for writability
  /// across short writes. On kUnavailable the stream must be considered
  /// poisoned: an unknown prefix may already have reached the peer, so the
  /// only safe recovery is to reconnect and re-ship (the replication
  /// protocol's idempotent redelivery absorbs the overlap).
  [[nodiscard]] Status WriteAll(std::string_view bytes, uint64_t timeout_ms);

  /// Read up to `max_bytes`, waiting up to `timeout_ms` for readability.
  /// Returns bytes (possibly fewer than asked), an empty string on orderly
  /// peer shutdown, or kUnavailable when nothing arrived within the
  /// deadline / the peer reset.
  [[nodiscard]] Result<std::string> ReadSome(size_t max_bytes,
                                             uint64_t timeout_ms);

  /// One non-blocking recv for readiness loops that already poll()ed:
  /// `data` holds whatever was buffered (possibly empty when the kernel had
  /// nothing — NOT an error), `eof` is the orderly-shutdown verdict. A dead
  /// peer is kUnavailable, exactly like ReadSome.
  struct ReadChunk {
    std::string data;
    bool eof = false;
  };
  [[nodiscard]] Result<ReadChunk> TryRead(size_t max_bytes);

  /// One non-blocking send: returns how many bytes the kernel accepted
  /// (0 when the socket's send buffer is full — poll for POLLOUT and retry
  /// the remainder). A dead peer is kUnavailable.
  [[nodiscard]] Result<size_t> TryWrite(std::string_view bytes);

 private:
  int fd_ = -1;
};

/// \brief Listening TCP socket bound to 127.0.0.1 (replication is an
/// internal, same-trust-domain protocol; binding wider is the embedder's
/// call and would go through a richer config than this wrapper offers).
class Listener {
 public:
  Listener() = default;
  ~Listener() { Close(); }

  Listener(Listener&& other) noexcept : fd_(other.fd_), port_(other.port_) {
    other.fd_ = -1;
    other.port_ = 0;
  }
  Listener& operator=(Listener&& other) noexcept;
  Listener(const Listener&) = delete;
  Listener& operator=(const Listener&) = delete;

  /// Bind + listen on 127.0.0.1:`port` (0 = ephemeral; see port()).
  [[nodiscard]] static Result<Listener> Bind(uint16_t port);

  bool valid() const { return fd_ >= 0; }
  /// The listening fd, for inclusion in a caller's poll() set.
  int fd() const { return fd_; }
  /// The bound port (resolved after an ephemeral bind).
  uint16_t port() const { return port_; }
  void Close();

  /// Accept one connection within `timeout_ms`. kUnavailable when no
  /// connection arrived in time (poll again) or the listener is closed.
  [[nodiscard]] Result<Socket> Accept(uint64_t timeout_ms);

 private:
  int fd_ = -1;
  uint16_t port_ = 0;
};

}  // namespace mcm::util
