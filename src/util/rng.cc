#include "util/rng.h"

namespace mcm {

namespace {

inline uint64_t SplitMix64(uint64_t* x) {
  uint64_t z = (*x += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

inline uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

void Rng::Seed(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& s : state_) s = SplitMix64(&sm);
  // Avoid the (astronomically unlikely) all-zero state.
  if ((state_[0] | state_[1] | state_[2] | state_[3]) == 0) state_[0] = 1;
}

uint64_t Rng::Next() {
  const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
  const uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = Rotl(state_[3], 45);
  return result;
}

uint64_t Rng::NextBounded(uint64_t bound) {
  // Lemire's nearly-divisionless method.
  uint64_t x = Next();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  uint64_t l = static_cast<uint64_t>(m);
  if (l < bound) {
    uint64_t t = -bound % bound;
    while (l < t) {
      x = Next();
      m = static_cast<__uint128_t>(x) * bound;
      l = static_cast<uint64_t>(m);
    }
  }
  return static_cast<uint64_t>(m >> 64);
}

int64_t Rng::NextInRange(int64_t lo, int64_t hi) {
  return lo + static_cast<int64_t>(
                  NextBounded(static_cast<uint64_t>(hi - lo) + 1));
}

double Rng::NextDouble() {
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

bool Rng::NextBool(double p) { return NextDouble() < p; }

}  // namespace mcm
