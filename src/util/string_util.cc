#include "util/string_util.h"

#include <cstdarg>
#include <cstdio>

namespace mcm {

std::string Join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out += sep;
    out += parts[i];
  }
  return out;
}

std::vector<std::string> Split(std::string_view s, char delim) {
  std::vector<std::string> out;
  size_t start = 0;
  while (true) {
    size_t pos = s.find(delim, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(s.substr(start));
      break;
    }
    out.emplace_back(s.substr(start, pos - start));
    start = pos + 1;
  }
  return out;
}

std::string_view Trim(std::string_view s) {
  size_t b = 0, e = s.size();
  while (b < e && (s[b] == ' ' || s[b] == '\t' || s[b] == '\n' || s[b] == '\r'))
    ++b;
  while (e > b && (s[e - 1] == ' ' || s[e - 1] == '\t' || s[e - 1] == '\n' ||
                   s[e - 1] == '\r'))
    --e;
  return s.substr(b, e - b);
}

bool StartsWith(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

std::string StringPrintf(const char* fmt, ...) {
  va_list ap;
  va_start(ap, fmt);
  va_list ap2;
  va_copy(ap2, ap);
  int n = vsnprintf(nullptr, 0, fmt, ap);
  va_end(ap);
  std::string out;
  if (n > 0) {
    out.resize(static_cast<size_t>(n));
    vsnprintf(out.data(), out.size() + 1, fmt, ap2);
  }
  va_end(ap2);
  return out;
}

}  // namespace mcm
