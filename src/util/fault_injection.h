// Deterministic fault injection for robustness tests.
//
// Production code marks interesting failure sites with
//
//   MCM_FAULT_POINT("engine/round");
//
// which is a no-op (one relaxed atomic load) until a test arms the site:
//
//   util::FaultInjection::Instance().Arm(
//       "engine/round", Status::DeadlineExceeded("injected"), /*nth=*/3);
//
// The third hit of the site then returns the armed Status from the enclosing
// function, and the site disarms itself (unless armed sticky). This is what
// lets every abort path — deadline, cancellation, caps, unsafe verdicts — be
// driven exactly, instead of only by crafting pathological data.
//
// The registry is process-global and mutex-guarded: every Arm / Disarm /
// Check / counter read is internally synchronized, so chaos tests may arm
// and re-arm sites from one thread while worker threads trip them. The
// only relaxation is the unlocked fast-path count of armed sites, which
// can make a *concurrent* Arm take effect one hit late on another thread —
// arm before starting workers when exact hit indices matter. Tests are
// expected to DisarmAll() in teardown.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "util/mutex.h"
#include "util/status.h"
#include "util/thread_annotations.h"

namespace mcm::util {

/// \brief Process-global registry of armable failure sites.
class FaultInjection {
 public:
  static FaultInjection& Instance();

  /// Arm `site` to return `status` at its `nth` next hit (1-based, counted
  /// from the moment of arming). A non-sticky site disarms after firing;
  /// a sticky one fires on every hit from the nth on, until Disarm().
  void Arm(const std::string& site, Status status, uint64_t nth = 1,
           bool sticky = false);

  void Disarm(const std::string& site);
  void DisarmAll();

  /// Hits observed at `site` since it was last armed (0 when never armed).
  uint64_t HitCount(const std::string& site) const;
  /// Times `site` actually fired its fault since it was last armed.
  uint64_t FireCount(const std::string& site) const;

  /// Sites currently armed (for test diagnostics).
  std::vector<std::string> ArmedSites() const;

  /// The check behind MCM_FAULT_POINT: OK unless `site` is armed and this
  /// hit is the one that fires. Near-free when nothing is armed anywhere.
  Status Check(std::string_view site);

 private:
  FaultInjection() = default;

  struct SiteState {
    Status status;
    uint64_t nth = 1;
    bool sticky = false;
    bool armed = false;
    uint64_t hits = 0;
    uint64_t fires = 0;
  };

  std::atomic<int> armed_count_{0};
  /// Leaf of the lock-order registry (rank 8, util/mutex.h): MCM_FAULT_POINT
  /// sites fire under the store's commit lock, so nothing may be acquired
  /// while this is held.
  mutable Mutex mu_ MCM_ACQUIRED_AFTER(kLockRankFaultInjection);
  std::unordered_map<std::string, SiteState> sites_ MCM_GUARDED_BY(mu_);
};

}  // namespace mcm::util

/// Mark a failure site: returns the armed Status out of the enclosing
/// function when the site fires (works in functions returning Status or
/// Result<T>).
#define MCM_FAULT_POINT(site)                                       \
  do {                                                              \
    ::mcm::Status _mcm_fault_status =                               \
        ::mcm::util::FaultInjection::Instance().Check(site);        \
    if (!_mcm_fault_status.ok()) return _mcm_fault_status;          \
  } while (0)
