// CRC-32 (IEEE 802.3, polynomial 0xEDB88320) for WAL record and checkpoint
// integrity checks.
//
// A deliberately simple table-driven implementation: the WAL appends are
// fsync-bound, so checksum speed is irrelevant next to durability cost, and
// a self-contained software CRC keeps the storage layer free of platform
// intrinsics. The table is built at compile time.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <string_view>

namespace mcm::util {

namespace internal {

constexpr std::array<uint32_t, 256> MakeCrc32Table() {
  std::array<uint32_t, 256> table{};
  for (uint32_t i = 0; i < 256; ++i) {
    uint32_t c = i;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1u) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
    }
    table[i] = c;
  }
  return table;
}

inline constexpr std::array<uint32_t, 256> kCrc32Table = MakeCrc32Table();

}  // namespace internal

/// CRC-32 of `n` bytes at `data`. Pass a previous result as `seed` to
/// checksum data in chunks (the seed of the first chunk is 0).
inline uint32_t Crc32(const void* data, size_t n, uint32_t seed = 0) {
  const auto* p = static_cast<const unsigned char*>(data);
  uint32_t c = seed ^ 0xFFFFFFFFu;
  for (size_t i = 0; i < n; ++i) {
    c = internal::kCrc32Table[(c ^ p[i]) & 0xFFu] ^ (c >> 8);
  }
  return c ^ 0xFFFFFFFFu;
}

inline uint32_t Crc32(std::string_view s, uint32_t seed = 0) {
  return Crc32(s.data(), s.size(), seed);
}

}  // namespace mcm::util
