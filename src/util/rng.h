// Deterministic pseudo-random number generation for workload synthesis.
//
// Workload generators must be reproducible across runs and platforms, so we
// ship our own xoshiro256** implementation instead of relying on
// implementation-defined std::default_random_engine behaviour.
#pragma once

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace mcm {

/// \brief xoshiro256** PRNG with SplitMix64 seeding.
///
/// Fast, high-quality, and fully deterministic given a seed. Used by all
/// workload generators so that benchmark datasets are reproducible.
class Rng {
 public:
  explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ULL) { Seed(seed); }

  /// Re-seed the generator (SplitMix64 expansion of `seed`).
  void Seed(uint64_t seed);

  /// Next raw 64-bit value.
  uint64_t Next();

  /// Uniform integer in [0, bound). `bound` must be > 0. Uses rejection
  /// sampling (Lemire) to avoid modulo bias.
  uint64_t NextBounded(uint64_t bound);

  /// Uniform integer in [lo, hi] inclusive.
  int64_t NextInRange(int64_t lo, int64_t hi);

  /// Uniform double in [0, 1).
  double NextDouble();

  /// Bernoulli trial with probability p.
  bool NextBool(double p = 0.5);

  /// Fisher-Yates shuffle of a vector.
  template <typename T>
  void Shuffle(std::vector<T>* v) {
    if (v->empty()) return;
    for (size_t i = v->size() - 1; i > 0; --i) {
      size_t j = static_cast<size_t>(NextBounded(i + 1));
      std::swap((*v)[i], (*v)[j]);
    }
  }

  /// Pick a uniformly random element index of a non-empty container size.
  size_t NextIndex(size_t size) { return static_cast<size_t>(NextBounded(size)); }

 private:
  uint64_t state_[4];
};

}  // namespace mcm
