#include "util/socket.h"

#include <arpa/inet.h>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/types.h>
#include <unistd.h>

#include <algorithm>

#include "util/string_util.h"

namespace mcm::util {
namespace {

using Clock = std::chrono::steady_clock;

// Milliseconds left before `deadline`, clamped to [0, INT_MAX] for poll().
int MsUntil(Clock::time_point deadline) {
  auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
                  deadline - Clock::now())
                  .count();
  if (left < 0) return 0;
  if (left > 1'000'000'000) return 1'000'000'000;
  return static_cast<int>(left);
}

Status SetNonBlocking(int fd) {
  int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0 || ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0) {
    return Status::Internal(
        StringPrintf("fcntl(O_NONBLOCK): %s", std::strerror(errno)));
  }
  return Status::OK();
}

// Wait until `fd` is ready for `events` (POLLIN/POLLOUT) or the deadline
// passes. Returns kUnavailable on timeout so callers can map it to their own
// taxonomy; EINTR is retried against the same absolute deadline.
Status PollReady(int fd, short events, Clock::time_point deadline) {
  for (;;) {
    struct pollfd pfd;
    pfd.fd = fd;
    pfd.events = events;
    pfd.revents = 0;
    int rc = ::poll(&pfd, 1, MsUntil(deadline));
    if (rc > 0) return Status::OK();
    if (rc == 0) return Status::Unavailable("poll timeout");
    if (errno == EINTR) continue;
    return Status::Internal(StringPrintf("poll: %s", std::strerror(errno)));
  }
}

// A peer that vanished (reset/refused/broken pipe) is the reconnectable
// kUnavailable verdict; anything else is a local programming/OS error.
bool ErrnoMeansPeerGone(int err) {
  return err == ECONNRESET || err == ECONNREFUSED || err == EPIPE ||
         err == ENOTCONN || err == ETIMEDOUT || err == EHOSTUNREACH ||
         err == ENETUNREACH || err == ENETDOWN || err == ECONNABORTED;
}

}  // namespace

Socket& Socket::operator=(Socket&& other) noexcept {
  if (this != &other) {
    Close();
    fd_ = other.fd_;
    other.fd_ = -1;
  }
  return *this;
}

void Socket::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

Result<Socket> Socket::Connect(const std::string& host, uint16_t port,
                               uint64_t timeout_ms) {
  struct sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    return Status::InvalidArgument(
        StringPrintf("not a numeric IPv4 address: '%s'", host.c_str()));
  }

  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return Status::Internal(
        StringPrintf("socket: %s", std::strerror(errno)));
  }
  Socket sock(fd);  // RAII from here on.
  MCM_RETURN_NOT_OK(SetNonBlocking(fd));
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));

  auto deadline = Clock::now() + std::chrono::milliseconds(timeout_ms);
  int rc = ::connect(fd, reinterpret_cast<struct sockaddr*>(&addr),
                     sizeof(addr));
  if (rc < 0 && errno != EINPROGRESS) {
    if (ErrnoMeansPeerGone(errno)) {
      return Status::Unavailable(
          StringPrintf("connect %s:%u: %s", host.c_str(), unsigned{port},
                       std::strerror(errno)));
    }
    return Status::Internal(
        StringPrintf("connect: %s", std::strerror(errno)));
  }
  if (rc < 0) {
    Status ready = PollReady(fd, POLLOUT, deadline);
    if (ready.IsUnavailable()) {
      return Status::DeadlineExceeded(
          StringPrintf("connect %s:%u timed out after %llu ms", host.c_str(),
                       unsigned{port},
                       static_cast<unsigned long long>(timeout_ms)));
    }
    MCM_RETURN_NOT_OK(ready);
    int err = 0;
    socklen_t len = sizeof(err);
    if (::getsockopt(fd, SOL_SOCKET, SO_ERROR, &err, &len) < 0 || err != 0) {
      if (ErrnoMeansPeerGone(err)) {
        return Status::Unavailable(
            StringPrintf("connect %s:%u: %s", host.c_str(), unsigned{port},
                         std::strerror(err)));
      }
      return Status::Internal(
          StringPrintf("connect: %s", std::strerror(err)));
    }
  }
  return sock;
}

Status Socket::WriteAll(std::string_view bytes, uint64_t timeout_ms) {
  if (fd_ < 0) return Status::FailedPrecondition("socket closed");
  auto deadline = Clock::now() + std::chrono::milliseconds(timeout_ms);
  size_t sent = 0;
  while (sent < bytes.size()) {
    ssize_t n = ::send(fd_, bytes.data() + sent, bytes.size() - sent,
                       MSG_NOSIGNAL);
    if (n > 0) {
      sent += static_cast<size_t>(n);
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      Status ready = PollReady(fd_, POLLOUT, deadline);
      if (ready.IsUnavailable()) {
        return Status::Unavailable(StringPrintf(
            "write stalled: %zu/%zu bytes after %llu ms", sent, bytes.size(),
            static_cast<unsigned long long>(timeout_ms)));
      }
      MCM_RETURN_NOT_OK(ready);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    int err = errno;
    if (n == 0 || ErrnoMeansPeerGone(err)) {
      return Status::Unavailable(
          StringPrintf("peer gone mid-write (%zu/%zu bytes): %s", sent,
                       bytes.size(), std::strerror(err)));
    }
    return Status::Internal(StringPrintf("send: %s", std::strerror(err)));
  }
  return Status::OK();
}

Result<std::string> Socket::ReadSome(size_t max_bytes, uint64_t timeout_ms) {
  if (fd_ < 0) return Status::FailedPrecondition("socket closed");
  if (max_bytes == 0) return std::string();
  auto deadline = Clock::now() + std::chrono::milliseconds(timeout_ms);
  std::string buf;
  buf.resize(std::min<size_t>(max_bytes, 1 << 16));
  for (;;) {
    ssize_t n = ::recv(fd_, buf.data(), buf.size(), 0);
    if (n > 0) {
      buf.resize(static_cast<size_t>(n));
      return buf;
    }
    if (n == 0) return std::string();  // orderly shutdown
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      Status ready = PollReady(fd_, POLLIN, deadline);
      if (!ready.ok()) return ready;  // kUnavailable: nothing buffered in time
      continue;
    }
    if (errno == EINTR) continue;
    int err = errno;
    if (ErrnoMeansPeerGone(err)) {
      return Status::Unavailable(
          StringPrintf("peer gone mid-read: %s", std::strerror(err)));
    }
    return Status::Internal(StringPrintf("recv: %s", std::strerror(err)));
  }
}

Result<Socket::ReadChunk> Socket::TryRead(size_t max_bytes) {
  if (fd_ < 0) return Status::FailedPrecondition("socket closed");
  ReadChunk chunk;
  if (max_bytes == 0) return chunk;
  chunk.data.resize(std::min<size_t>(max_bytes, 1 << 16));
  for (;;) {
    ssize_t n = ::recv(fd_, chunk.data.data(), chunk.data.size(), 0);
    if (n > 0) {
      chunk.data.resize(static_cast<size_t>(n));
      return chunk;
    }
    if (n == 0) {
      chunk.data.clear();
      chunk.eof = true;
      return chunk;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      chunk.data.clear();
      return chunk;  // nothing buffered right now
    }
    if (errno == EINTR) continue;
    int err = errno;
    if (ErrnoMeansPeerGone(err)) {
      return Status::Unavailable(
          StringPrintf("peer gone mid-read: %s", std::strerror(err)));
    }
    return Status::Internal(StringPrintf("recv: %s", std::strerror(err)));
  }
}

Result<size_t> Socket::TryWrite(std::string_view bytes) {
  if (fd_ < 0) return Status::FailedPrecondition("socket closed");
  if (bytes.empty()) return size_t{0};
  for (;;) {
    ssize_t n = ::send(fd_, bytes.data(), bytes.size(), MSG_NOSIGNAL);
    if (n >= 0) return static_cast<size_t>(n);
    if (errno == EAGAIN || errno == EWOULDBLOCK) return size_t{0};
    if (errno == EINTR) continue;
    int err = errno;
    if (ErrnoMeansPeerGone(err)) {
      return Status::Unavailable(
          StringPrintf("peer gone mid-write: %s", std::strerror(err)));
    }
    return Status::Internal(StringPrintf("send: %s", std::strerror(err)));
  }
}

Listener& Listener::operator=(Listener&& other) noexcept {
  if (this != &other) {
    Close();
    fd_ = other.fd_;
    port_ = other.port_;
    other.fd_ = -1;
    other.port_ = 0;
  }
  return *this;
}

void Listener::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  port_ = 0;
}

Result<Listener> Listener::Bind(uint16_t port) {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return Status::Internal(
        StringPrintf("socket: %s", std::strerror(errno)));
  }
  Listener lst;
  lst.fd_ = fd;
  int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  MCM_RETURN_NOT_OK(SetNonBlocking(fd));

  struct sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (::bind(fd, reinterpret_cast<struct sockaddr*>(&addr), sizeof(addr)) <
      0) {
    return Status::Unavailable(
        StringPrintf("bind 127.0.0.1:%u: %s", unsigned{port},
                     std::strerror(errno)));
  }
  if (::listen(fd, 16) < 0) {
    return Status::Internal(
        StringPrintf("listen: %s", std::strerror(errno)));
  }
  socklen_t len = sizeof(addr);
  if (::getsockname(fd, reinterpret_cast<struct sockaddr*>(&addr), &len) <
      0) {
    return Status::Internal(
        StringPrintf("getsockname: %s", std::strerror(errno)));
  }
  lst.port_ = ntohs(addr.sin_port);
  return lst;
}

Result<Socket> Listener::Accept(uint64_t timeout_ms) {
  if (fd_ < 0) return Status::FailedPrecondition("listener closed");
  auto deadline = Clock::now() + std::chrono::milliseconds(timeout_ms);
  for (;;) {
    int fd = ::accept(fd_, nullptr, nullptr);
    if (fd >= 0) {
      Socket sock(fd);
      MCM_RETURN_NOT_OK(SetNonBlocking(fd));
      int one = 1;
      ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
      return sock;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      MCM_RETURN_NOT_OK(PollReady(fd_, POLLIN, deadline));
      continue;
    }
    if (errno == EINTR || errno == ECONNABORTED) continue;
    return Status::Internal(
        StringPrintf("accept: %s", std::strerror(errno)));
  }
}

}  // namespace mcm::util
