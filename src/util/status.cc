#include "util/status.h"

namespace mcm {

std::string_view StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kAlreadyExists:
      return "AlreadyExists";
    case StatusCode::kParseError:
      return "ParseError";
    case StatusCode::kUnsafe:
      return "Unsafe";
    case StatusCode::kUnsupported:
      return "Unsupported";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kDeadlineExceeded:
      return "DeadlineExceeded";
    case StatusCode::kCancelled:
      return "Cancelled";
    case StatusCode::kUnavailable:
      return "Unavailable";
    case StatusCode::kDataLoss:
      return "DataLoss";
    case StatusCode::kFailedPrecondition:
      return "FailedPrecondition";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out(StatusCodeToString(code_));
  out += ": ";
  out += message_;
  return out;
}

}  // namespace mcm
