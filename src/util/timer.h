// Wall-clock timing helper used by benchmark harnesses and examples.
#pragma once

#include <chrono>

namespace mcm {

/// \brief Monotonic stopwatch.
///
/// Starts on construction; ElapsedSeconds()/ElapsedMicros() report time since
/// construction or the last Restart().
class Timer {
 public:
  Timer() : start_(Clock::now()) {}

  void Restart() { start_ = Clock::now(); }

  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  int64_t ElapsedMicros() const {
    return std::chrono::duration_cast<std::chrono::microseconds>(Clock::now() -
                                                                 start_)
        .count();
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace mcm
