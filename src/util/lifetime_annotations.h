// Clang lifetime / escape-analysis annotation macros.
//
// These wrap Clang's statement-local lifetime attributes so the object
// lifetime protocol of the storage→eval→service stack is *proven* at
// compile time, the same way util/thread_annotations.h proves the locking
// protocol: every accessor that hands out a reference, pointer, or view
// into an owning object declares MCM_LIFETIME_BOUND, and every owner/view
// pair declares MCM_OWNER / MCM_VIEW_OF, so a reference that escapes its
// owner's lifetime — a view outliving its pin, a relation pointer cached
// past the database that owns it — is a compile diagnostic, not a
// use-after-free ASan may or may not catch on a given input.
//
// The hazard this exists for: zero-copy execution reads *directly* from a
// pinned EdbVersion (storage/edb_view.h) instead of copying it, so any
// `const Relation*` or `const Tuple&` that outlives the pin is a dangling
// read of memory a later epoch swap may free. The annotations make the
// sanctioned discipline — derive views only from a live pin, never return
// or store them past it — statically checkable.
//
// Build mode: configure with -DMCM_LIFETIME_SAFETY=ON (Clang only) to
// promote `-Wdangling -Wdangling-gsl -Wreturn-stack-address` to errors; CI
// gates on it, and tests/lifetime/ holds negative-compile cases proving
// the annotations reject escaping references. Under any non-Clang compiler
// every macro expands to nothing, so GCC builds are unaffected.
//
// DESIGN.md §5i documents the annotation table and the escape-hatch rules
// (when an unannotated accessor is acceptable).
#pragma once

#if defined(__clang__) && defined(__has_cpp_attribute)
#if __has_cpp_attribute(clang::lifetimebound)
#define MCM_LIFETIME_BOUND [[clang::lifetimebound]]
#endif
#if __has_cpp_attribute(gsl::Owner)
#define MCM_OWNER(T) [[gsl::Owner(T)]]
#define MCM_VIEW_OF(T) [[gsl::Pointer(T)]]
#endif
#endif

/// The returned reference/pointer (or the constructed view, on a
/// constructor parameter) is valid only as long as the annotated argument
/// — for member functions, only as long as *this*. Clang diagnoses
/// statement-local escapes: binding the result to a longer-lived variable
/// when the argument is a temporary (-Wdangling) and returning a result
/// derived from a local (-Wreturn-stack-address).
///
/// Placement rules (Clang):
///   * parameter:        `explicit View(const Owner& o MCM_LIFETIME_BOUND);`
///   * implicit `this`:  `const T& get() const MCM_LIFETIME_BOUND;`
///     (after the member function's cv-qualifiers).
#ifndef MCM_LIFETIME_BOUND
#define MCM_LIFETIME_BOUND  // no-op off Clang
#endif

/// Marks a class that owns the storage views point into (vector-shaped:
/// Database owns Relations, EdbVersion owns its relation map, Relation
/// owns its tuple vector). `T` names the pointee type diagnostics mention.
/// A MCM_VIEW_OF type initialized from a temporary MCM_OWNER — e.g. a view
/// built over `*store.Pin()` without keeping the pin — is a -Wdangling-gsl
/// diagnostic.
#ifndef MCM_OWNER
#define MCM_OWNER(T)  // no-op off Clang
#endif

/// Marks a non-owning view/handle class (string_view-shaped: EdbView over
/// an EdbVersion). Also the hook bugprone-dangling-handle keys on in the
/// clang-tidy gate (.clang-tidy registers mcm::EdbView as a handle class).
#ifndef MCM_VIEW_OF
#define MCM_VIEW_OF(T)  // no-op off Clang
#endif
