#include "util/signal_pipe.h"

#include <cerrno>
#include <csignal>
#include <cstring>
#include <fcntl.h>
#include <unistd.h>

#include "util/string_util.h"

namespace mcm::util {

WakeupPipe::WakeupPipe() {
  if (::pipe(fds_) < 0) {
    status_ = Status::Internal(
        StringPrintf("pipe: %s", std::strerror(errno)));
    fds_[0] = fds_[1] = -1;
    return;
  }
  for (int fd : fds_) {
    int flags = ::fcntl(fd, F_GETFL, 0);
    if (flags < 0 || ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0) {
      status_ = Status::Internal(
          StringPrintf("fcntl(O_NONBLOCK): %s", std::strerror(errno)));
      return;
    }
    ::fcntl(fd, F_SETFD, FD_CLOEXEC);
  }
}

WakeupPipe::~WakeupPipe() {
  for (int& fd : fds_) {
    if (fd >= 0) {
      ::close(fd);
      fd = -1;
    }
  }
}

void WakeupPipe::Notify() {
  if (fds_[1] < 0) return;
  const char byte = 1;
  // EAGAIN means the pipe already holds unread wakeups — the loop is
  // guaranteed to wake, so dropping this byte is correct. EINTR: one retry
  // is enough for the same reason.
  ssize_t rc = ::write(fds_[1], &byte, 1);
  if (rc < 0 && errno == EINTR) {
    (void)::write(fds_[1], &byte, 1);
  }
}

void WakeupPipe::Drain() {
  if (fds_[0] < 0) return;
  char buf[256];
  while (::read(fds_[0], buf, sizeof(buf)) > 0) {
  }
}

SignalPipe& SignalPipe::Instance() {
  // Leaked: signal handlers may run until the very last instruction of the
  // process, so the pipe must never be destroyed.
  static SignalPipe* instance = new SignalPipe();
  return *instance;
}

void SignalPipe::Handler(int sig) {
  // Async-signal-safe: one relaxed-store-free atomic write + one write().
  SignalPipe& self = Instance();
  self.last_signal_.store(sig, std::memory_order_release);
  self.pipe_.Notify();
}

Status SignalPipe::Install(std::initializer_list<int> signals) {
  MCM_RETURN_NOT_OK(pipe_.status());
  struct sigaction sa;
  std::memset(&sa, 0, sizeof(sa));
  sa.sa_handler = &SignalPipe::Handler;
  sigemptyset(&sa.sa_mask);
  // No SA_RESTART: a blocking read in a non-poll loop should see EINTR and
  // get a chance to check triggered().
  sa.sa_flags = 0;
  for (int sig : signals) {
    if (::sigaction(sig, &sa, nullptr) < 0) {
      return Status::Internal(StringPrintf("sigaction(%d): %s", sig,
                                           std::strerror(errno)));
    }
  }
  return Status::OK();
}

void SignalPipe::RaiseForTest(int sig) {
  last_signal_.store(sig, std::memory_order_release);
  pipe_.Notify();
}

void SignalPipe::Reset() {
  last_signal_.store(0, std::memory_order_release);
  pipe_.Drain();
}

}  // namespace mcm::util
