#include "util/fault_injection.h"

namespace mcm::util {

FaultInjection& FaultInjection::Instance() {
  static FaultInjection instance;
  return instance;
}

void FaultInjection::Arm(const std::string& site, Status status, uint64_t nth,
                         bool sticky) {
  MutexLock lock(mu_);
  SiteState& state = sites_[site];
  // Release pairs with the acquire fast-path load in Check(): a thread that
  // observes the non-zero count also observes the armed state it guards
  // (threads started after Arm() returns are additionally ordered by thread
  // creation, which is what chaos tests rely on for determinism).
  if (!state.armed) armed_count_.fetch_add(1, std::memory_order_release);
  state.status = std::move(status);
  state.nth = nth == 0 ? 1 : nth;
  state.sticky = sticky;
  state.armed = true;
  state.hits = 0;
  state.fires = 0;
}

void FaultInjection::Disarm(const std::string& site) {
  MutexLock lock(mu_);
  auto it = sites_.find(site);
  if (it != sites_.end() && it->second.armed) {
    it->second.armed = false;
    armed_count_.fetch_sub(1, std::memory_order_relaxed);
  }
}

void FaultInjection::DisarmAll() {
  MutexLock lock(mu_);
  for (auto& [site, state] : sites_) {
    if (state.armed) {
      state.armed = false;
      armed_count_.fetch_sub(1, std::memory_order_relaxed);
    }
  }
}

uint64_t FaultInjection::HitCount(const std::string& site) const {
  MutexLock lock(mu_);
  auto it = sites_.find(site);
  return it == sites_.end() ? 0 : it->second.hits;
}

uint64_t FaultInjection::FireCount(const std::string& site) const {
  MutexLock lock(mu_);
  auto it = sites_.find(site);
  return it == sites_.end() ? 0 : it->second.fires;
}

std::vector<std::string> FaultInjection::ArmedSites() const {
  MutexLock lock(mu_);
  std::vector<std::string> out;
  for (const auto& [site, state] : sites_) {
    if (state.armed) out.push_back(site);
  }
  return out;
}

Status FaultInjection::Check(std::string_view site) {
  // Fast path: nothing armed anywhere in the process.
  if (armed_count_.load(std::memory_order_acquire) == 0) return Status::OK();
  MutexLock lock(mu_);
  auto it = sites_.find(std::string(site));
  if (it == sites_.end() || !it->second.armed) return Status::OK();
  SiteState& state = it->second;
  ++state.hits;
  if (state.hits < state.nth) return Status::OK();
  ++state.fires;
  Status fired = state.status;
  if (!state.sticky) {
    state.armed = false;
    armed_count_.fetch_sub(1, std::memory_order_relaxed);
  }
  return fired;
}

}  // namespace mcm::util
