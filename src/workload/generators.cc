#include "workload/generators.h"

#include <algorithm>
#include <set>

#include "util/rng.h"

namespace mcm::workload {

namespace {

/// Offset separating R-side values from L-side values.
constexpr Value kROffset = 1'000'000;

}  // namespace

void CslData::Load(Database* db, const std::string& l_name,
                   const std::string& e_name,
                   const std::string& r_name) const {
  Relation* lr = db->GetOrCreateRelation(l_name, 2);
  Relation* er = db->GetOrCreateRelation(e_name, 2);
  Relation* rr = db->GetOrCreateRelation(r_name, 2);
  lr->Clear();
  if (er != lr) er->Clear();
  if (rr != lr && rr != er) rr->Clear();
  for (auto [a, b] : l) lr->Insert2(a, b);
  for (auto [a, b] : e) er->Insert2(a, b);
  for (auto [a, b] : r) rr->Insert2(a, b);
}

LGraph MakeChainL(size_t n) {
  LGraph g;
  g.n = n;
  for (size_t i = 0; i + 1 < n; ++i) {
    g.arcs.emplace_back(static_cast<Value>(i), static_cast<Value>(i + 1));
  }
  return g;
}

LGraph MakeTreeL(size_t branching, size_t depth) {
  LGraph g;
  g.n = 1;
  std::vector<Value> frontier{0};
  for (size_t d = 0; d < depth; ++d) {
    std::vector<Value> next;
    for (Value u : frontier) {
      for (size_t c = 0; c < branching; ++c) {
        Value v = static_cast<Value>(g.n++);
        g.arcs.emplace_back(u, v);
        next.push_back(v);
      }
    }
    frontier = std::move(next);
  }
  return g;
}

LGraph MakeLayeredL(const LayeredSpec& spec) {
  Rng rng(spec.seed);
  LGraph g;
  // Node ids: 0 = source; layer d in 1..layers holds ids
  // 1 + (d-1)*width .. d*width.
  auto node_at = [&](size_t layer, size_t j) -> Value {
    if (layer == 0) return 0;
    return static_cast<Value>(1 + (layer - 1) * spec.width + j);
  };
  auto layer_size = [&](size_t layer) -> size_t {
    return layer == 0 ? 1 : spec.width;
  };
  g.n = 1 + spec.layers * spec.width;

  std::set<std::pair<Value, Value>> arcs;
  auto add = [&](Value u, Value v) {
    if (arcs.emplace(u, v).second) g.arcs.emplace_back(u, v);
  };

  for (size_t d = 1; d <= spec.layers; ++d) {
    for (size_t j = 0; j < spec.width; ++j) {
      Value v = node_at(d, j);
      // Guaranteed in-arc for connectivity.
      add(node_at(d - 1, rng.NextIndex(layer_size(d - 1))), v);
      for (size_t k = 0; k < spec.extra_arcs; ++k) {
        add(node_at(d - 1, rng.NextIndex(layer_size(d - 1))), v);
      }
    }
  }

  // Skip arcs (layer i -> i+2): the target gains a path one arc shorter
  // than its layer, becoming multiple.
  size_t placed = 0, guard = 0;
  while (placed < spec.skip_arcs && guard++ < spec.skip_arcs * 20 + 100) {
    if (spec.layers < 2) break;
    size_t lo = std::max<size_t>(spec.bad_start_layer, 0);
    if (lo > spec.layers - 2) break;
    size_t i = lo + rng.NextIndex(spec.layers - 1 - lo);  // i in [lo, layers-2]
    Value u = node_at(i, rng.NextIndex(layer_size(i)));
    Value v = node_at(i + 2, rng.NextIndex(layer_size(i + 2)));
    if (arcs.emplace(u, v).second) {
      g.arcs.emplace_back(u, v);
      ++placed;
    }
  }

  // Back arcs (layer i -> earlier layer >= max(bad_start_layer,1)): cycles.
  placed = 0;
  guard = 0;
  while (placed < spec.back_arcs && guard++ < spec.back_arcs * 20 + 100) {
    size_t lo = std::max<size_t>(spec.bad_start_layer, 1);
    if (lo + 1 > spec.layers) break;
    size_t i = lo + 1 + rng.NextIndex(spec.layers - lo);  // i in [lo+1, layers]
    if (i > spec.layers) i = spec.layers;
    size_t back = std::min(i - lo, spec.back_span);
    size_t target_layer = i - back;
    if (target_layer < lo) target_layer = lo;
    Value u = node_at(i, rng.NextIndex(layer_size(i)));
    Value v = node_at(target_layer, rng.NextIndex(layer_size(target_layer)));
    if (arcs.emplace(u, v).second) {
      g.arcs.emplace_back(u, v);
      ++placed;
    }
  }

  return g;
}

CslData AssembleCsl(const LGraph& lg, const ErSpec& er,
                    std::string description) {
  CslData data;
  data.description = std::move(description);
  data.l = lg.arcs;
  data.source = 0;

  if (er.kind == ErSpec::Kind::kMirror) {
    // R mirrors L: R(y, y1) for every L arc (y, y1); walking R downward
    // undoes one L step. E is the identity between the two domains.
    for (auto [u, v] : lg.arcs) {
      data.r.emplace_back(u + kROffset, v + kROffset);
    }
    for (size_t i = 0; i < lg.n; ++i) {
      data.e.emplace_back(static_cast<Value>(i),
                          static_cast<Value>(i) + kROffset);
    }
    return data;
  }

  // kRandom: R-side nodes get random "levels" so that R tuples always
  // descend (R(y, y1) with level(y) < level(y1)) and the R-side of the
  // query graph stays acyclic (finite P relation, safe reference runs).
  Rng rng(er.seed);
  size_t rn = std::max<size_t>(er.r_nodes, 1);
  std::vector<size_t> level(rn);
  for (size_t i = 0; i < rn; ++i) level[i] = rng.NextIndex(64);
  for (size_t k = 0; k < er.r_arcs; ++k) {
    size_t y = rng.NextIndex(rn);
    size_t y1 = rng.NextIndex(rn);
    if (level[y] == level[y1]) continue;
    if (level[y] > level[y1]) std::swap(y, y1);
    data.r.emplace_back(static_cast<Value>(y) + kROffset,
                        static_cast<Value>(y1) + kROffset);
  }
  // One E arc per L node to a random R node.
  for (size_t i = 0; i < lg.n; ++i) {
    data.e.emplace_back(static_cast<Value>(i),
                        static_cast<Value>(rng.NextIndex(rn)) + kROffset);
  }
  return data;
}

CslData MakeSameGeneration(size_t people, size_t max_parents, uint64_t seed) {
  Rng rng(seed);
  CslData data;
  data.description = "same-generation(" + std::to_string(people) + ")";
  data.source = 0;
  // Person 0 is the query constant. parent(X, XP): XP is a parent of X.
  // Parents have *higher* ids than children so the parent DAG is acyclic
  // (generations ascend with id).
  for (size_t x = 0; x + 1 < people; ++x) {
    size_t parents = 1 + rng.NextIndex(max_parents);
    for (size_t p = 0; p < parents; ++p) {
      size_t xp = x + 1 + rng.NextIndex(people - x - 1);
      data.l.emplace_back(static_cast<Value>(x), static_cast<Value>(xp));
    }
  }
  // R is the same relation; E is the identity ("everyone is of the same
  // generation as himself").
  data.r = data.l;
  for (size_t x = 0; x < people; ++x) {
    data.e.emplace_back(static_cast<Value>(x), static_cast<Value>(x));
  }
  return data;
}

CslData MakeFigure1Style() {
  // L side (values 0..5, source 0): a regular magic graph —
  //   0 -> 1, 0 -> 2, 1 -> 3, 2 -> 4, 3 -> 5, 4 -> 5
  // (5 is reached by two paths, both of length 3: still single.)
  // R side (values 100..108): a DAG mirroring three levels; E connects the
  // L frontier into it. Ground truth is worked out in figure1_test.cc.
  CslData data;
  data.description = "figure1-style regular instance";
  data.source = 0;
  data.l = {{0, 1}, {0, 2}, {1, 3}, {2, 4}, {3, 5}, {4, 5}};
  // E arcs: from L nodes at distance d to R nodes whose downward R-chains
  // have length >= d in places, < d in others.
  data.e = {{1, 101}, {3, 103}, {5, 105}, {2, 106}};
  // R(y, y1): y1 is one level above y; the R-side graph arcs run y1 -> y.
  data.r = {{100, 101},  // 101 -> 100
            {102, 103}, {101, 102},  // 103 -> 102 -> 101 (chain)
            {104, 105}, {103, 104},  // 105 -> 104 -> 103
            {107, 106}, {108, 107}};
  return data;
}

LGraph MakeFigure2StyleL() {
  // Values 0..11 mimic the paper's a..l magic graph: a clean single region
  // near the source, two multiple nodes, and a recurring cluster deepest.
  //   single:    0 (source), 1, 2, 3, 4, 5
  //   multiple:  6 (dists 2,3), 7 (dists 3,4)
  //   recurring: 8, 9, 10, 11 (8 -> 9 -> 10 -> 8 cycle, 11 off 10)
  LGraph g;
  g.n = 12;
  g.arcs = {
      {0, 1}, {0, 2}, {0, 3},          // source fan-out (dist 1)
      {2, 4}, {2, 5}, {3, 5},          // singles at dist 2
      {3, 6}, {4, 6},                  // 6: dists {2, 3} -> multiple
      {5, 7}, {6, 7},                  // 7: dists {3} u {3,4} -> multiple
      {7, 8},                          // gateway into the cycle
      {8, 9}, {9, 10}, {10, 8},        // 3-cycle: recurring
      {10, 11},                        // recurring tail
  };
  return g;
}

CslData MakeRandomCsl(size_t l_nodes, size_t l_arcs, size_t r_nodes,
                      size_t r_arcs, size_t e_arcs, uint64_t seed) {
  Rng rng(seed);
  CslData data;
  data.description = "random";
  data.source = 0;
  std::set<std::pair<Value, Value>> seen;
  for (size_t k = 0; k < l_arcs && l_nodes > 0; ++k) {
    Value u = static_cast<Value>(rng.NextIndex(l_nodes));
    Value v = static_cast<Value>(rng.NextIndex(l_nodes));
    if (seen.emplace(u, v).second) data.l.emplace_back(u, v);
  }
  seen.clear();
  for (size_t k = 0; k < r_arcs && r_nodes > 0; ++k) {
    Value u = static_cast<Value>(rng.NextIndex(r_nodes)) + kROffset;
    Value v = static_cast<Value>(rng.NextIndex(r_nodes)) + kROffset;
    if (seen.emplace(u, v).second) data.r.emplace_back(u, v);
  }
  seen.clear();
  for (size_t k = 0; k < e_arcs && l_nodes > 0 && r_nodes > 0; ++k) {
    Value u = static_cast<Value>(rng.NextIndex(l_nodes));
    Value v = static_cast<Value>(rng.NextIndex(r_nodes)) + kROffset;
    if (seen.emplace(u, v).second) data.e.emplace_back(u, v);
  }
  return data;
}

}  // namespace mcm::workload
