// Synthetic CSL query instances for tests and benchmarks.
//
// Every generator is deterministic given its seed. L-side node values are
// 0..n-1 with the source at 0; R-side values live at an offset so the two
// domains never collide (the paper keeps L-nodes and R-nodes distinct even
// when values coincide — same-generation instances exercise the colliding
// case separately).
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "storage/database.h"
#include "storage/value.h"

namespace mcm::workload {

/// A fully materialized CSL instance: the three binary relations plus the
/// query constant.
struct CslData {
  std::vector<std::pair<Value, Value>> l;
  std::vector<std::pair<Value, Value>> e;
  std::vector<std::pair<Value, Value>> r;
  Value source = 0;
  std::string description;

  /// Load into `db` as relations named `l_name`/`e_name`/`r_name`
  /// (replacing any existing contents).
  void Load(Database* db, const std::string& l_name = "l",
            const std::string& e_name = "e",
            const std::string& r_name = "r") const;

  size_t m_l() const { return l.size(); }
  size_t m_e() const { return e.size(); }
  size_t m_r() const { return r.size(); }
};

/// \brief An L-side graph under construction: arcs over values 0..n-1,
/// source 0.
struct LGraph {
  size_t n = 0;
  std::vector<std::pair<Value, Value>> arcs;
};

/// Simple chain 0 -> 1 -> ... -> n-1 (regular).
LGraph MakeChainL(size_t n);

/// Complete tree with `branching` children per node and `depth` levels
/// below the root (regular; unique paths).
LGraph MakeTreeL(size_t branching, size_t depth);

/// \brief Layered random graph spec.
///
/// Layer 0 is the source; layers 1..layers each have `width` nodes. Every
/// node has one guaranteed in-arc from the previous layer (connectivity)
/// plus `extra_arcs` random previous-layer in-arcs — all of which keep the
/// graph *regular* (every path to a layer-d node has length d).
/// Non-regularity is injected separately:
///  * `skip_arcs` arcs jump from layer i to layer i+2 (targets become
///    multiple);
///  * `back_arcs` arcs go from layer i to layer max(i-back_span, 1)
///    (creates cycles; targets and everything reachable become recurring).
/// Both kinds are only placed at layers >= `bad_start_layer`, which makes
/// two-region instances (clean near the source, dirty deep) — the shape
/// that separates single/multiple/recurring methods from basic.
struct LayeredSpec {
  size_t layers = 8;
  size_t width = 8;
  size_t extra_arcs = 1;
  size_t skip_arcs = 0;
  size_t back_arcs = 0;
  size_t back_span = 3;
  size_t bad_start_layer = 0;
  uint64_t seed = 42;
};

LGraph MakeLayeredL(const LayeredSpec& spec);

/// How the E and R relations are derived from an L-side graph.
struct ErSpec {
  enum class Kind {
    kMirror,  ///< R mirrors L (m_R = m_L) and E is the identity — the
              ///< same-generation shape; answers are "same level" nodes.
    kRandom,  ///< R is a random graph on `r_nodes` with `r_arcs` arcs whose
              ///< arcs descend level-wise so R-side walks terminate; E maps
              ///< each L-node to one random R-node.
  };
  Kind kind = Kind::kMirror;
  size_t r_nodes = 0;  ///< kRandom only
  size_t r_arcs = 0;   ///< kRandom only
  uint64_t seed = 7;
};

/// Assemble a full instance from an L graph and an E/R recipe.
CslData AssembleCsl(const LGraph& lg, const ErSpec& er,
                    std::string description = "");

/// Random same-generation instance: `people` persons, each non-root person
/// gets 1..max_parents parents among lower-numbered persons; L = R = the
/// parent relation, E = identity. Colliding L/R value domains on purpose.
CslData MakeSameGeneration(size_t people, size_t max_parents, uint64_t seed);

/// A small instance in the style of the paper's Figure 1: a regular magic
/// graph of 6 nodes over an R-side of 9 nodes, with a hand-checkable answer
/// set (documented in the corresponding test).
CslData MakeFigure1Style();

/// A small magic graph in the style of the paper's Figure 2: contains
/// single, multiple and recurring nodes with a clean region near the source
/// (i_x = 2), so all four Step-1 variants produce different RC/RM splits.
/// Returns only the L side; callers attach E/R via AssembleCsl.
LGraph MakeFigure2StyleL();

/// Fully random CSL instance for property tests: arcs sprinkled uniformly,
/// may be cyclic, disconnected, or degenerate.
CslData MakeRandomCsl(size_t l_nodes, size_t l_arcs, size_t r_nodes,
                      size_t r_arcs, size_t e_arcs, uint64_t seed);

}  // namespace mcm::workload
