// Fixpoint evaluation of stratified Datalog programs.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "datalog/ast.h"
#include "eval/rule_eval.h"
#include "eval/strata.h"
#include "runtime/execution_context.h"
#include "storage/database.h"
#include "util/lifetime_annotations.h"
#include "util/status.h"

namespace mcm::eval {

/// Knobs for a fixpoint run.
struct EvalOptions {
  /// Seminaive (delta-driven) evaluation; naive re-derives everything each
  /// round. Both compute the same fixpoint.
  bool seminaive = true;

  /// Abort with Status::Unsafe after this many rounds in a single recursive
  /// stratum (0 = unlimited). This is the guard that turns the counting
  /// method's divergence on cyclic data into a detectable error instead of
  /// an infinite loop.
  uint64_t max_iterations = 0;

  /// Abort with Status::Unsafe once a stratum has derived this many tuples
  /// (0 = unlimited).
  uint64_t max_tuples = 0;

  /// Abort with Status::Unsafe once the database's approximate footprint
  /// (Database::ApproxBytes) exceeds this budget (0 = unlimited). Checked at
  /// the same round granularity as the other caps.
  uint64_t max_memory_bytes = 0;

  /// Optional execution governor carrying a wall-clock deadline and a
  /// cooperative cancellation token, polled at stratum-round boundaries.
  /// Not owned; must outlive Run().
  const runtime::ExecutionContext* context = nullptr;

  /// Collect a per-rule cost breakdown (Engine::profile()). Adds two stat
  /// snapshots per rule evaluation; negligible overhead.
  bool profile = false;

  /// Skip program validation in Run(). Set by callers that already ran the
  /// static analyzer (analysis::Analyze) over the same program — e.g. the
  /// planner — so the checks are not re-derived per evaluation.
  bool assume_validated = false;
};

/// Statistics of one Run().
struct EvalRunInfo {
  uint64_t iterations = 0;      ///< Total fixpoint rounds over all strata.
  uint64_t tuples_derived = 0;  ///< New tuples inserted into IDB relations.
  size_t strata = 0;

  /// Why the run was stopped early (kNone on success). The same reason is
  /// rendered into the returned Status message.
  runtime::AbortReason abort_reason = runtime::AbortReason::kNone;
  size_t abort_stratum = 0;     ///< Stratum index that aborted (when set).
  std::string abort_rule;       ///< Hottest rule of the aborting stratum
                                ///< (only when EvalOptions::profile is on).
};

/// Per-rule cost breakdown (collected when EvalOptions::profile is set).
struct RuleProfile {
  std::string rule;             ///< printable form of the rule
  uint64_t evaluations = 0;     ///< evaluator invocations (incl. deltas)
  uint64_t tuples_derived = 0;  ///< new tuples this rule produced
  uint64_t tuples_read = 0;     ///< retrievals attributed to this rule
};

/// \brief Evaluates a stratified Datalog program against a Database.
///
/// IDB relations are created in the database (by predicate name) if absent;
/// EDB relations must already be populated by the caller. The engine is
/// reusable: construct once, Run() once per program.
class Engine {
 public:
  explicit Engine(Database* db, EvalOptions options = {})
      : db_(db), options_(options) {}

  /// Evaluate `program` to fixpoint. On success, info() describes the run.
  [[nodiscard]] Status Run(const dl::Program& program);

  /// Tuples of `goal`'s predicate matching the goal's constant arguments
  /// (variables match anything). Run() must have succeeded.
  [[nodiscard]] Result<std::vector<Tuple>> Query(const dl::Atom& goal) const;

  /// Convenience: parse `goal_text` (e.g. "answer(Y)") and Query().
  [[nodiscard]] Result<std::vector<Tuple>> Query(
      const std::string& goal_text) const;

  const EvalRunInfo& info() const MCM_LIFETIME_BOUND { return info_; }

  /// Per-rule breakdown, parallel to the program's rule list. Empty unless
  /// EvalOptions::profile was set.
  const std::vector<RuleProfile>& profile() const MCM_LIFETIME_BOUND {
    return profile_;
  }

  /// Render profile() as an "EXPLAIN ANALYZE"-style table, most expensive
  /// rule first.
  std::string ProfileToString() const;

 private:
  Status EvaluateStratum(size_t stratum_index, const Stratum& stratum,
                         const std::vector<CompiledRule>& rules);

  /// Record the abort in info() and build the Status for a tripped cap or
  /// governor signal; `detail` describes the cap and its value.
  Status Abort(runtime::AbortReason reason, size_t stratum_index,
               const Stratum& stratum, const std::string& detail);

  size_t EvaluateRule(size_t rule_index, const CompiledRule& cr,
                      const RelationView& view, Relation* out);

  Database* db_;
  EvalOptions options_;
  EvalRunInfo info_;
  std::vector<RuleProfile> profile_;
};

/// One-shot helper: evaluate `program` against `db` and return the tuples
/// matching the program's (single) query goal.
[[nodiscard]] Result<std::vector<Tuple>> RunProgram(Database* db,
                                                    const dl::Program& program,
                                                    EvalOptions options = {});

}  // namespace mcm::eval
