#include "eval/rule_eval.h"

#include <algorithm>
#include <cassert>
#include <unordered_set>

#include "datalog/validate.h"

namespace mcm::eval {

namespace {

// Env slot assignment for variables, in first-binding order.
class SlotMap {
 public:
  int Lookup(const std::string& name) const {
    auto it = slots_.find(name);
    return it == slots_.end() ? -1 : it->second;
  }
  int Assign(const std::string& name) {
    auto it = slots_.find(name);
    if (it != slots_.end()) return it->second;
    int slot = static_cast<int>(names_.size());
    slots_.emplace(name, slot);
    names_.push_back(name);
    return slot;
  }
  const std::vector<std::string>& names() const { return names_; }

 private:
  std::unordered_map<std::string, int> slots_;
  std::vector<std::string> names_;
};

}  // namespace

std::vector<size_t> CompiledRule::DeltaFirstOrder(const dl::Rule& rule,
                                                  size_t first_pos) {
  std::vector<size_t> positives;
  for (size_t pos = 0; pos < rule.body.size(); ++pos) {
    if (rule.body[pos].IsPositiveAtom() && pos != first_pos) {
      positives.push_back(pos);
    }
  }
  std::vector<size_t> order{first_pos};
  std::unordered_set<std::string> bound;
  auto bind_atom_vars = [&](size_t pos) {
    for (const dl::Term& t : rule.body[pos].atom.args) {
      if (t.IsVariable()) bound.insert(t.name);
    }
  };
  bind_atom_vars(first_pos);
  while (!positives.empty()) {
    size_t best_i = 0;
    int best_score = -1;
    for (size_t i = 0; i < positives.size(); ++i) {
      int score = 0;
      for (const dl::Term& t : rule.body[positives[i]].atom.args) {
        if (t.IsConstant() ||
            ((t.IsVariable() || t.IsAffine()) && bound.count(t.name) > 0)) {
          ++score;
        }
      }
      if (score > best_score) {
        best_score = score;
        best_i = i;
      }
    }
    size_t pos = positives[best_i];
    positives.erase(positives.begin() + static_cast<ptrdiff_t>(best_i));
    order.push_back(pos);
    bind_atom_vars(pos);
  }
  return order;
}

Result<CompiledRule> CompiledRule::Compile(const dl::Rule& rule, Database* db,
                                           std::vector<size_t> join_order) {
  MCM_RETURN_NOT_OK(dl::ValidateRule(rule));

  CompiledRule cr;
  cr.rule_ = rule;
  SlotMap slots;

  // Default join order: positive atoms as written.
  if (join_order.empty()) {
    for (size_t pos = 0; pos < rule.body.size(); ++pos) {
      if (rule.body[pos].IsPositiveAtom()) join_order.push_back(pos);
    }
  }

  auto intern = [&](const dl::Term& t) -> Value {
    assert(t.IsConstant());
    if (t.kind == dl::Term::Kind::kInt) return t.value;
    return db->symbols().Intern(t.name);
  };

  // Build a BoundTerm for a term whose variables must already be assigned.
  auto bound_term = [&](const dl::Term& t) -> BoundTerm {
    BoundTerm bt;
    if (t.IsConstant()) {
      bt.kind = BoundTerm::Kind::kConstant;
      bt.constant = intern(t);
    } else if (t.IsAffine()) {
      bt.kind = BoundTerm::Kind::kAffine;
      bt.var = slots.Lookup(t.name);
      bt.offset = t.value;
      assert(bt.var >= 0);
    } else {
      bt.kind = BoundTerm::Kind::kVariable;
      bt.var = slots.Lookup(t.name);
      assert(bt.var >= 0);
    }
    return bt;
  };

  // Pass 1: collect positive atoms in join order, assigning variable slots
  // and classifying each argument as probe (bound) vs bind (free).
  std::unordered_set<std::string> bound_vars;
  for (size_t pos : join_order) {
    const dl::Literal& lit = rule.body[pos];
    if (!lit.IsPositiveAtom()) {
      return Status::InvalidArgument(
          "join_order position is not a positive atom");
    }
    cr.positive_positions_.push_back(pos);

    JoinStep step;
    step.body_pos = pos;
    step.atom = nullptr;  // fixed up after rule_ is stable (see below)
    std::unordered_set<std::string> locally_bound;
    for (uint32_t col = 0; col < lit.atom.args.size(); ++col) {
      const dl::Term& t = lit.atom.args[col];
      if (t.IsConstant()) {
        BoundTerm bt;
        bt.kind = BoundTerm::Kind::kConstant;
        bt.constant = intern(t);
        step.args.push_back(bt);
        step.probe_cols.push_back(col);
      } else if (t.IsAffine()) {
        // Validator guarantees the base variable is bound elsewhere; if it
        // is bound *before* this atom, the affine value is a probe key.
        if (bound_vars.count(t.name) == 0) {
          return Status::Unsupported(
              "affine term '" + t.ToString() +
              "' must be bound before its positive occurrence in: " +
              rule.ToString());
        }
        BoundTerm bt;
        bt.kind = BoundTerm::Kind::kAffine;
        bt.var = slots.Lookup(t.name);
        bt.offset = t.value;
        step.args.push_back(bt);
        step.probe_cols.push_back(col);
      } else {
        // Variable.
        if (bound_vars.count(t.name) > 0) {
          BoundTerm bt;
          bt.kind = BoundTerm::Kind::kVariable;
          bt.var = slots.Lookup(t.name);
          step.args.push_back(bt);
          step.probe_cols.push_back(col);
        } else if (locally_bound.count(t.name) > 0) {
          // Second occurrence within the same atom: filter, not probe —
          // the binding comes from an earlier column of this very tuple.
          int slot = slots.Lookup(t.name);
          BoundTerm bt;
          bt.kind = BoundTerm::Kind::kVariable;
          bt.var = slot;
          step.args.push_back(bt);
          step.filter_checks.emplace_back(col, slot);
        } else {
          int slot = slots.Assign(t.name);
          locally_bound.insert(t.name);
          BoundTerm bt;
          bt.kind = BoundTerm::Kind::kVariable;
          bt.var = slot;
          step.args.push_back(bt);
          step.bind_cols.push_back(col);
          step.bind_vars.push_back(slot);
        }
      }
    }
    bound_vars.insert(locally_bound.begin(), locally_bound.end());
    cr.steps_.push_back(std::move(step));
  }

  // Pass 2: attach guards (negations, comparisons) at the earliest step
  // after which all their variables are bound.
  auto vars_of_literal = [](const dl::Literal& lit) {
    std::vector<std::string> vars;
    auto visit = [&vars](const dl::Term& t) {
      if (t.IsVariable() || t.IsAffine()) vars.push_back(t.name);
    };
    if (lit.kind == dl::Literal::Kind::kAtom) {
      for (const dl::Term& t : lit.atom.args) visit(t);
    } else {
      visit(lit.cmp.lhs);
      visit(lit.cmp.rhs);
    }
    return vars;
  };

  // Variables bound after each step (prefix-cumulative).
  std::vector<std::unordered_set<std::string>> bound_after(cr.steps_.size());
  {
    std::unordered_set<std::string> acc;
    for (size_t s = 0; s < cr.steps_.size(); ++s) {
      for (int slot : cr.steps_[s].bind_vars) {
        acc.insert(slots.names()[static_cast<size_t>(slot)]);
      }
      bound_after[s] = acc;
    }
  }

  for (size_t pos = 0; pos < rule.body.size(); ++pos) {
    const dl::Literal& lit = rule.body[pos];
    if (lit.IsPositiveAtom()) continue;

    Guard g;
    if (lit.IsNegatedAtom()) {
      g.kind = Guard::Kind::kNegation;
      for (const dl::Term& t : lit.atom.args) g.args.push_back(bound_term(t));
    } else {
      g.kind = Guard::Kind::kComparison;
      g.op = lit.cmp.op;
      g.lhs = bound_term(lit.cmp.lhs);
      g.rhs = bound_term(lit.cmp.rhs);
    }

    std::vector<std::string> vars = vars_of_literal(lit);
    size_t guard_idx = cr.guards_.size();
    if (vars.empty()) {
      cr.initial_guards_.push_back(guard_idx);
    } else {
      // Earliest step after which all vars are bound.
      size_t attach = cr.steps_.size();  // sentinel: never bound
      for (size_t s = 0; s < cr.steps_.size(); ++s) {
        bool all = std::all_of(vars.begin(), vars.end(),
                               [&](const std::string& v) {
                                 return bound_after[s].count(v) > 0;
                               });
        if (all) {
          attach = s;
          break;
        }
      }
      if (attach == cr.steps_.size()) {
        return Status::InvalidArgument(
            "guard variables never bound (unsafe rule): " + rule.ToString());
      }
      cr.steps_[attach].guards.push_back(guard_idx);
    }
    cr.guards_.push_back(std::move(g));
  }

  // Head argument resolution.
  for (const dl::Term& t : rule.head.args) {
    cr.head_args_.push_back(bound_term(t));
  }

  cr.var_names_ = slots.names();

  // Fix up borrowed atom pointers now that rule_ will no longer move: they
  // must point into cr.rule_, not the caller's rule.
  {
    for (JoinStep& step : cr.steps_) {
      step.atom = &cr.rule_.body[step.body_pos].atom;
    }
    // guards_[k] is the k-th non-positive literal in body order.
    size_t guard_i = 0;
    for (size_t pos = 0; pos < cr.rule_.body.size(); ++pos) {
      const dl::Literal& lit = cr.rule_.body[pos];
      if (lit.IsPositiveAtom()) continue;
      if (lit.IsNegatedAtom()) {
        cr.guards_[guard_i].atom = &lit.atom;
      }
      ++guard_i;
    }
  }

  return cr;
}

bool CompiledRule::CheckGuards(const JoinStep& step, const RelationView& view,
                               const std::vector<Value>& env) const {
  for (size_t gi : step.guards) {
    const Guard& g = guards_[gi];
    if (g.kind == Guard::Kind::kComparison) {
      if (!dl::EvalCmp(g.op, Resolve(g.lhs, env), Resolve(g.rhs, env))) {
        return false;
      }
    } else {
      const Relation* rel = view.negation_source(g.atom->predicate);
      if (rel == nullptr) continue;  // empty relation: negation holds
      Tuple t(static_cast<uint32_t>(g.args.size()));
      for (uint32_t i = 0; i < g.args.size(); ++i) {
        t[i] = Resolve(g.args[i], env);
      }
      if (rel->Contains(t)) return false;
    }
  }
  return true;
}

size_t CompiledRule::EvaluateFrom(size_t step_idx, const RelationView& view,
                                  std::vector<Value>* env,
                                  Relation* out) const {
  if (step_idx == steps_.size()) {
    Tuple t(static_cast<uint32_t>(head_args_.size()));
    for (uint32_t i = 0; i < head_args_.size(); ++i) {
      t[i] = Resolve(head_args_[i], *env);
    }
    return out->Insert(t) ? 1 : 0;
  }

  const JoinStep& step = steps_[step_idx];
  const Relation* rel = view.body_source(step.body_pos, step.atom->predicate);
  if (rel == nullptr || rel->empty()) return 0;

  size_t produced = 0;
  auto process_tuple = [&](const Tuple& t) {
    // Bind free columns.
    for (size_t i = 0; i < step.bind_cols.size(); ++i) {
      (*env)[step.bind_vars[i]] = t[step.bind_cols[i]];
    }
    // Repeated-variable filters within this atom.
    for (const auto& [col, slot] : step.filter_checks) {
      if (t[col] != (*env)[slot]) return;
    }
    if (!CheckGuards(step, view, *env)) return;
    produced += EvaluateFrom(step_idx + 1, view, env, out);
  };

  if (step.probe_cols.empty()) {
    // Full scan.
    for (const Tuple& t : rel->Scan()) process_tuple(t);
  } else if (step.bind_cols.empty()) {
    // Fully bound: membership check.
    Tuple key(static_cast<uint32_t>(step.args.size()));
    for (uint32_t i = 0; i < step.args.size(); ++i) {
      key[i] = Resolve(step.args[i], *env);
    }
    if (rel->Contains(key)) {
      if (CheckGuards(step, view, *env)) {
        produced += EvaluateFrom(step_idx + 1, view, env, out);
      }
    }
  } else {
    // Index probe on the bound columns.
    std::vector<Value> key_vals;
    key_vals.reserve(step.probe_cols.size());
    // args is stored per column in column order, so args[col] is the
    // BoundTerm for column col.
    for (uint32_t col : step.probe_cols) {
      key_vals.push_back(Resolve(step.args[col], *env));
    }
    // Copy the postings: for recursive rules `rel` can be the relation we
    // are inserting into, and an insert may grow this very index bucket
    // (invalidating the reference Probe returned) or reallocate tuple
    // storage.
    std::vector<uint32_t> ids = rel->Probe(step.probe_cols, key_vals);
    for (uint32_t id : ids) {
      Tuple t = rel->PeekUnchecked(id);
      process_tuple(t);
    }
  }
  return produced;
}

size_t CompiledRule::Evaluate(const RelationView& view, Relation* out) const {
  std::vector<Value> env(var_names_.size(), 0);
  // Constant-only guards.
  for (size_t gi : initial_guards_) {
    const Guard& g = guards_[gi];
    if (g.kind == Guard::Kind::kComparison) {
      if (!dl::EvalCmp(g.op, Resolve(g.lhs, env), Resolve(g.rhs, env))) {
        return 0;
      }
    } else {
      const Relation* rel = view.negation_source(g.atom->predicate);
      if (rel != nullptr) {
        Tuple t(static_cast<uint32_t>(g.args.size()));
        for (uint32_t i = 0; i < g.args.size(); ++i) {
          t[i] = Resolve(g.args[i], env);
        }
        if (rel->Contains(t)) return 0;
      }
    }
  }
  return EvaluateFrom(0, view, &env, out);
}

}  // namespace mcm::eval
