// Predicate dependency analysis and stratification.
//
// The engine evaluates programs with stratified negation: the predicate
// dependency graph (edge q -> p when p occurs in the body of a rule whose
// head is q) is condensed into strongly connected components; a negative
// edge inside a component makes the program non-stratifiable and is
// rejected. Components are ordered bottom-up and evaluated one stratum at a
// time.
#pragma once

#include <string>
#include <unordered_map>
#include <vector>

#include "datalog/ast.h"
#include "util/status.h"

namespace mcm::eval {

/// \brief One evaluation stratum: a set of mutually recursive predicates and
/// the rules defining them.
struct Stratum {
  std::vector<std::string> predicates;
  std::vector<size_t> rule_indices;  ///< Indices into the program's rules.
  bool recursive = false;  ///< True if any rule depends on a predicate of
                           ///< this same stratum (needs a fixpoint loop).
};

/// \brief Result of dependency analysis.
struct Stratification {
  std::vector<Stratum> strata;  ///< Bottom-up evaluation order.
  /// Predicate -> stratum index.
  std::unordered_map<std::string, size_t> stratum_of;
};

/// Compute a stratification of `program`, or fail with InvalidArgument if a
/// negation occurs inside a recursive component.
[[nodiscard]] Result<Stratification> Stratify(const dl::Program& program);

}  // namespace mcm::eval
