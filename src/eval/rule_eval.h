// Single-rule evaluation: indexed nested-loop join over the body literals.
//
// A rule is compiled once into an execution plan:
//  * positive atoms are joined left-to-right; at each position the engine
//    probes an index on the columns whose value is already bound (constants
//    or previously bound variables), scanning only on the first atom when
//    nothing is bound;
//  * negated atoms and comparisons are attached as guards at the earliest
//    position where all their variables are bound (the validator guarantees
//    such a position exists);
//  * affine terms (J+1) are computed from the binding environment.
//
// Evaluation can substitute a *delta* relation for one designated positive
// atom — the primitive the seminaive fixpoint is built from.
#pragma once

#include <functional>
#include <string>
#include <unordered_map>
#include <vector>

#include "datalog/ast.h"
#include "storage/database.h"
#include "storage/relation.h"
#include "util/lifetime_annotations.h"
#include "util/status.h"

namespace mcm::eval {

/// Resolves predicate names to the relations a rule should read from /
/// write to. The seminaive engine supplies views where one occurrence reads
/// a delta relation.
struct RelationView {
  /// Relation read for the positive body atom at position `body_pos`
  /// (positions index `Rule::body`). Must not be nullptr for positive atoms.
  std::function<const Relation*(size_t body_pos, const std::string& pred)>
      body_source;
  /// Relation read for negated atoms (always the full relation).
  std::function<const Relation*(const std::string& pred)> negation_source;
};

/// \brief Compiled form of one rule, reusable across fixpoint rounds.
class CompiledRule {
 public:
  /// Compile `rule` against `db` (interns symbol constants). Fails if the
  /// rule is not safe in the sense checked by dl::ValidateRule.
  ///
  /// `join_order`, when non-empty, lists the body positions of the rule's
  /// positive atoms in the order they should be joined (it must be a
  /// permutation of exactly those positions). Guards still attach at the
  /// earliest point their variables are bound. The seminaive engine uses
  /// this to put the delta atom first.
  [[nodiscard]] static Result<CompiledRule> Compile(
      const dl::Rule& rule, Database* db, std::vector<size_t> join_order = {});

  /// A delta-first greedy join order for `rule`: `first_pos` (a positive
  /// body position) leads; remaining positive atoms are appended most-bound
  /// first (number of constant-or-bound arguments, ties by body order).
  static std::vector<size_t> DeltaFirstOrder(const dl::Rule& rule,
                                             size_t first_pos);

  /// Evaluate the rule under `view`, inserting derived head tuples into
  /// `out`. Returns the number of *new* tuples inserted — nodiscard
  /// because the seminaive fixpoint's termination test is built from it.
  [[nodiscard]] size_t Evaluate(const RelationView& view,
                                Relation* out) const;

  const dl::Rule& rule() const MCM_LIFETIME_BOUND { return rule_; }

  /// Positions (into rule().body) of the positive atoms, in join order.
  const std::vector<size_t>& positive_positions() const MCM_LIFETIME_BOUND {
    return positive_positions_;
  }

 private:
  // A term resolved against the binding environment at runtime.
  struct BoundTerm {
    enum class Kind { kConstant, kVariable, kAffine } kind;
    Value constant = 0;  // kConstant
    int var = -1;        // kVariable / kAffine: slot in the env
    int64_t offset = 0;  // kAffine
  };

  struct JoinStep {
    size_t body_pos;                 // which body literal
    const dl::Atom* atom;            // borrowed from rule_
    // For each argument: is it bound at probe time?
    std::vector<BoundTerm> args;
    std::vector<uint32_t> probe_cols;   // columns with bound values
    std::vector<uint32_t> bind_cols;    // columns that bind new variables
    std::vector<int> bind_vars;         // env slot per bind_col
    // Repeated free variable within this same atom: tuple column must equal
    // the env slot bound by an earlier column of the same tuple.
    std::vector<std::pair<uint32_t, int>> filter_checks;
    // Guards evaluated right after this step binds its variables.
    std::vector<size_t> guards;         // indices into guards_
  };

  struct Guard {
    enum class Kind { kNegation, kComparison } kind;
    // Negation:
    const dl::Atom* atom = nullptr;
    std::vector<BoundTerm> args;
    // Comparison:
    dl::CmpOp op = dl::CmpOp::kEq;
    BoundTerm lhs, rhs;
  };

  CompiledRule() = default;

  Value Resolve(const BoundTerm& t, const std::vector<Value>& env) const {
    switch (t.kind) {
      case BoundTerm::Kind::kConstant:
        return t.constant;
      case BoundTerm::Kind::kVariable:
        return env[t.var];
      case BoundTerm::Kind::kAffine:
        return env[t.var] + t.offset;
    }
    return 0;
  }

  bool CheckGuards(const JoinStep& step, const RelationView& view,
                   const std::vector<Value>& env) const;

  size_t EvaluateFrom(size_t step_idx, const RelationView& view,
                      std::vector<Value>* env, Relation* out) const;

  dl::Rule rule_;
  std::vector<std::string> var_names_;  // env slot -> variable name
  std::vector<JoinStep> steps_;
  std::vector<Guard> guards_;
  std::vector<size_t> initial_guards_;  // guards with no variables at all
  std::vector<BoundTerm> head_args_;
  std::vector<size_t> positive_positions_;
};

}  // namespace mcm::eval
