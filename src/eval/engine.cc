#include "eval/engine.h"

#include <algorithm>
#include <memory>
#include <unordered_map>
#include <unordered_set>

#include "datalog/parser.h"
#include "datalog/validate.h"
#include "util/fault_injection.h"

namespace mcm::eval {

namespace {

// Materialize the tuples of `rel` with ids in [lo, hi) into a fresh
// relation. Copying is engine bookkeeping, not a database retrieval, so it
// bypasses instrumentation.
void CopyRange(const Relation& rel, size_t lo, size_t hi, Relation* out) {
  for (size_t id = lo; id < hi; ++id) {
    out->Insert(rel.PeekUnchecked(id));
  }
}

}  // namespace

Status Engine::Run(const dl::Program& program) {
  if (!options_.assume_validated) {
    MCM_RETURN_NOT_OK(dl::Validate(program));
  }
  MCM_ASSIGN_OR_RETURN(Stratification strat, Stratify(program));
  info_ = EvalRunInfo{};
  info_.strata = strat.strata.size();

  // Create all relations mentioned by the program (EDB relations may already
  // exist and stay untouched).
  for (const auto& [pred, arity] : program.PredicateArities()) {
    Relation* existing = db_->Find(pred);
    if (existing != nullptr) {
      if (existing->arity() != arity) {
        return Status::InvalidArgument(
            "relation '" + pred + "' exists with arity " +
            std::to_string(existing->arity()) + ", program uses " +
            std::to_string(arity));
      }
    } else {
      db_->GetOrCreateRelation(pred, arity);
    }
  }

  profile_.clear();
  if (options_.profile) {
    profile_.resize(program.rules.size());
    for (size_t i = 0; i < program.rules.size(); ++i) {
      profile_[i].rule = program.rules[i].ToString();
    }
  }

  // Compile all rules once.
  std::vector<CompiledRule> compiled;
  compiled.reserve(program.rules.size());
  for (const dl::Rule& r : program.rules) {
    MCM_ASSIGN_OR_RETURN(CompiledRule cr, CompiledRule::Compile(r, db_));
    compiled.push_back(std::move(cr));
  }

  for (size_t i = 0; i < strat.strata.size(); ++i) {
    MCM_FAULT_POINT("engine/stratum");
    MCM_RETURN_NOT_OK(EvaluateStratum(i, strat.strata[i], compiled));
  }
  return Status::OK();
}

Status Engine::Abort(runtime::AbortReason reason, size_t stratum_index,
                     const Stratum& stratum, const std::string& detail) {
  info_.abort_reason = reason;
  info_.abort_stratum = stratum_index;

  std::string msg = detail + " in recursive stratum #" +
                    std::to_string(stratum_index) + " containing '" +
                    stratum.predicates[0] + "'";
  // With profiling on, name the stratum's hottest rule so the user sees
  // *where* the budget went, not just that it ran out.
  if (options_.profile && !profile_.empty()) {
    const RuleProfile* hottest = nullptr;
    for (size_t ri : stratum.rule_indices) {
      const RuleProfile& p = profile_[ri];
      if (hottest == nullptr || p.tuples_read > hottest->tuples_read) {
        hottest = &p;
      }
    }
    if (hottest != nullptr && hottest->tuples_read > 0) {
      info_.abort_rule = hottest->rule;
      msg += "; hottest rule: " + hottest->rule + " (" +
             std::to_string(hottest->tuples_read) + " tuple reads)";
    }
  }

  switch (reason) {
    case runtime::AbortReason::kDeadlineExceeded:
      return Status::DeadlineExceeded(msg);
    case runtime::AbortReason::kCancelled:
      return Status::Cancelled(msg);
    default:
      return Status::Unsafe(msg);
  }
}

Status Engine::EvaluateStratum(size_t stratum_index, const Stratum& stratum,
                               const std::vector<CompiledRule>& rules) {
  std::unordered_set<std::string> local(stratum.predicates.begin(),
                                        stratum.predicates.end());

  // Governor poll + abort bookkeeping shared by every check below.
  auto governor_check = [&]() -> Status {
    if (options_.context == nullptr) return Status::OK();
    runtime::AbortReason reason = options_.context->CheckAbort();
    if (reason == runtime::AbortReason::kNone) return Status::OK();
    return Abort(reason, stratum_index, stratum,
                 reason == runtime::AbortReason::kCancelled
                     ? "evaluation cancelled"
                     : "wall-clock deadline exceeded");
  };

  auto full_source = [this](const std::string& pred) -> const Relation* {
    return db_->Find(pred);
  };

  RelationView full_view;
  full_view.body_source = [&](size_t, const std::string& pred) {
    return full_source(pred);
  };
  full_view.negation_source = full_source;

  MCM_RETURN_NOT_OK(governor_check());

  // --- Non-recursive stratum: a single pass over its rules suffices. ---
  if (!stratum.recursive) {
    for (size_t ri : stratum.rule_indices) {
      const CompiledRule& cr = rules[ri];
      Relation* out = db_->Find(cr.rule().head.predicate);
      info_.tuples_derived += EvaluateRule(ri, cr, full_view, out);
    }
    ++info_.iterations;
    return Status::OK();
  }

  // --- Recursive stratum. ---
  // Pre-compile delta-first variants: for each rule and each body position
  // holding a local predicate, a copy of the rule whose join order starts
  // at that position. This is what makes seminaive rounds cost O(|delta| *
  // fanout) instead of O(|relation|) per round.
  struct DeltaVariant {
    size_t rule_index;
    size_t pos;  // body position reading the delta
    CompiledRule compiled;
  };
  std::vector<DeltaVariant> variants;
  for (size_t ri : stratum.rule_indices) {
    const CompiledRule& cr = rules[ri];
    for (size_t pos : cr.positive_positions()) {
      const std::string& pred = cr.rule().body[pos].atom.predicate;
      if (local.count(pred) == 0) continue;
      auto order = CompiledRule::DeltaFirstOrder(cr.rule(), pos);
      Result<CompiledRule> variant =
          CompiledRule::Compile(cr.rule(), db_, std::move(order));
      if (variant.ok()) {
        variants.push_back({ri, pos, std::move(variant).value()});
      } else {
        // Reordering rejected (e.g. affine-binding constraints): fall back
        // to the written order; correctness is unaffected.
        MCM_ASSIGN_OR_RETURN(CompiledRule fallback,
                             CompiledRule::Compile(cr.rule(), db_));
        variants.push_back({ri, pos, std::move(fallback)});
      }
    }
  }

  // Pre-existing tuples of local predicates (e.g. facts inserted by lower
  // passes or by the caller) participate as initial deltas.
  std::unordered_map<std::string, size_t> delta_lo;
  for (const std::string& pred : stratum.predicates) {
    delta_lo[pred] = 0;
  }

  // Round 0: naive pass so that derivations needing no recursive tuple
  // (exit rules) fire.
  uint64_t stratum_tuples = 0;
  for (size_t ri : stratum.rule_indices) {
    const CompiledRule& cr = rules[ri];
    Relation* out = db_->Find(cr.rule().head.predicate);
    MCM_FAULT_POINT("engine/insert");
    size_t n = EvaluateRule(ri, cr, full_view, out);
    info_.tuples_derived += n;
    stratum_tuples += n;
  }
  ++info_.iterations;

  uint64_t rounds = 1;
  while (true) {
    MCM_FAULT_POINT("engine/round");
    MCM_RETURN_NOT_OK(governor_check());
    // Snapshot deltas: for each local predicate, the id range added since
    // the previous round (append-only storage makes this a range).
    std::unordered_map<std::string, std::unique_ptr<Relation>> deltas;
    bool any_delta = false;
    for (const std::string& pred : stratum.predicates) {
      Relation* full = db_->Find(pred);
      size_t lo = delta_lo[pred];
      size_t hi = full->size();
      auto delta = std::make_unique<Relation>("delta_" + pred, full->arity(),
                                              &db_->stats());
      CopyRange(*full, lo, hi, delta.get());
      delta_lo[pred] = hi;
      if (!delta->empty()) any_delta = true;
      deltas.emplace(pred, std::move(delta));
    }
    if (!any_delta) break;

    if (options_.max_iterations != 0 && rounds > options_.max_iterations) {
      return Abort(runtime::AbortReason::kIterationCap, stratum_index,
                   stratum,
                   "fixpoint exceeded iteration cap (" +
                       std::to_string(options_.max_iterations) +
                       "), likely divergent (cyclic data)");
    }

    if (!options_.seminaive) {
      // Naive round: every rule against full relations.
      for (size_t ri : stratum.rule_indices) {
        const CompiledRule& cr = rules[ri];
        Relation* out = db_->Find(cr.rule().head.predicate);
        MCM_FAULT_POINT("engine/insert");
        size_t n = EvaluateRule(ri, cr, full_view, out);
        info_.tuples_derived += n;
        stratum_tuples += n;
      }
    } else {
      // Seminaive round: for each rule and each body position holding a
      // local (same-stratum) predicate, evaluate the delta-first variant
      // where that position reads the delta and all others read the full
      // relation.
      for (const DeltaVariant& dv : variants) {
        Relation* out = db_->Find(dv.compiled.rule().head.predicate);
        size_t pos = dv.pos;
        RelationView delta_view;
        delta_view.body_source =
            [&, pos](size_t body_pos,
                     const std::string& p) -> const Relation* {
          if (body_pos == pos) return deltas.at(p).get();
          return db_->Find(p);
        };
        delta_view.negation_source = full_source;
        MCM_FAULT_POINT("engine/insert");
        size_t n = EvaluateRule(dv.rule_index, dv.compiled, delta_view, out);
        info_.tuples_derived += n;
        stratum_tuples += n;
      }
    }
    ++info_.iterations;
    ++rounds;

    if (options_.max_tuples != 0 && stratum_tuples > options_.max_tuples) {
      return Abort(runtime::AbortReason::kTupleCap, stratum_index, stratum,
                   "fixpoint exceeded tuple cap (" +
                       std::to_string(options_.max_tuples) + ")");
    }
    if (options_.max_memory_bytes != 0 &&
        db_->ApproxBytes() > options_.max_memory_bytes) {
      return Abort(runtime::AbortReason::kMemoryBudget, stratum_index,
                   stratum,
                   "fixpoint exceeded memory budget (" +
                       std::to_string(options_.max_memory_bytes) +
                       " bytes, ~" + std::to_string(db_->ApproxBytes()) +
                       " in use)");
    }
  }
  return Status::OK();
}

size_t Engine::EvaluateRule(size_t rule_index, const CompiledRule& cr,
                            const RelationView& view, Relation* out) {
  if (!options_.profile) return cr.Evaluate(view, out);
  uint64_t reads_before = db_->stats().tuples_read;
  size_t derived = cr.Evaluate(view, out);
  RuleProfile& p = profile_[rule_index];
  p.evaluations++;
  p.tuples_derived += derived;
  p.tuples_read += db_->stats().tuples_read - reads_before;
  return derived;
}

std::string Engine::ProfileToString() const {
  std::vector<const RuleProfile*> sorted;
  sorted.reserve(profile_.size());
  for (const RuleProfile& p : profile_) sorted.push_back(&p);
  std::sort(sorted.begin(), sorted.end(),
            [](const RuleProfile* a, const RuleProfile* b) {
              return a->tuples_read > b->tuples_read;
            });
  std::string out = "rule profile (by tuple reads):\n";
  for (const RuleProfile* p : sorted) {
    out += "  reads=" + std::to_string(p->tuples_read) +
           " derived=" + std::to_string(p->tuples_derived) +
           " evals=" + std::to_string(p->evaluations) + "  " + p->rule +
           "\n";
  }
  return out;
}

Result<std::vector<Tuple>> Engine::Query(const dl::Atom& goal) const {
  const Relation* rel = db_->Find(goal.predicate);
  if (rel == nullptr) {
    return Status::NotFound("relation '" + goal.predicate + "' not found");
  }
  if (rel->arity() != goal.arity()) {
    return Status::InvalidArgument("goal arity mismatch for '" +
                                   goal.predicate + "'");
  }
  // Resolve constant positions.
  std::vector<std::pair<uint32_t, Value>> filters;
  for (uint32_t i = 0; i < goal.args.size(); ++i) {
    const dl::Term& t = goal.args[i];
    if (t.kind == dl::Term::Kind::kInt) {
      filters.emplace_back(i, t.value);
    } else if (t.kind == dl::Term::Kind::kSymbol) {
      Value v = db_->symbols().Find(t.name);
      if (v < 0) return std::vector<Tuple>{};  // unknown symbol: no matches
      filters.emplace_back(i, v);
    } else if (t.IsAffine()) {
      return Status::InvalidArgument("affine term in query goal");
    }
  }
  std::vector<Tuple> out;
  for (const Tuple& t : rel->TuplesUnchecked()) {
    bool match = true;
    for (const auto& [col, val] : filters) {
      if (t[col] != val) {
        match = false;
        break;
      }
    }
    if (match) out.push_back(t);
  }
  return out;
}

Result<std::vector<Tuple>> Engine::Query(const std::string& goal_text) const {
  MCM_ASSIGN_OR_RETURN(dl::Atom goal, dl::ParseAtom(goal_text));
  return Query(goal);
}

Result<std::vector<Tuple>> RunProgram(Database* db, const dl::Program& program,
                                      EvalOptions options) {
  Engine engine(db, options);
  MCM_RETURN_NOT_OK(engine.Run(program));
  if (program.queries.size() != 1) {
    return Status::InvalidArgument("RunProgram expects exactly one query");
  }
  return engine.Query(program.queries[0].goal);
}

}  // namespace mcm::eval
