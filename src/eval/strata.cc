#include "eval/strata.h"

#include <algorithm>
#include <unordered_set>

namespace mcm::eval {

namespace {

// Iterative Tarjan SCC over predicate names (indices into `preds`).
class SccFinder {
 public:
  SccFinder(size_t n, const std::vector<std::vector<size_t>>& adj)
      : adj_(adj),
        index_(n, kUnvisited),
        lowlink_(n, 0),
        on_stack_(n, false) {}

  // Returns components in *reverse topological* order (Tarjan property:
  // a component is emitted only after all components it depends on).
  std::vector<std::vector<size_t>> Run() {
    for (size_t v = 0; v < index_.size(); ++v) {
      if (index_[v] == kUnvisited) Visit(v);
    }
    return components_;
  }

 private:
  static constexpr size_t kUnvisited = static_cast<size_t>(-1);

  void Visit(size_t root) {
    struct Frame {
      size_t v;
      size_t edge;
    };
    std::vector<Frame> call_stack{{root, 0}};
    while (!call_stack.empty()) {
      Frame& f = call_stack.back();
      size_t v = f.v;
      if (f.edge == 0) {
        index_[v] = lowlink_[v] = next_index_++;
        stack_.push_back(v);
        on_stack_[v] = true;
      }
      bool descended = false;
      while (f.edge < adj_[v].size()) {
        size_t w = adj_[v][f.edge++];
        if (index_[w] == kUnvisited) {
          call_stack.push_back({w, 0});
          descended = true;
          break;
        }
        if (on_stack_[w]) {
          lowlink_[v] = std::min(lowlink_[v], index_[w]);
        }
      }
      if (descended) continue;
      // Post-order for v.
      if (lowlink_[v] == index_[v]) {
        std::vector<size_t> comp;
        while (true) {
          size_t w = stack_.back();
          stack_.pop_back();
          on_stack_[w] = false;
          comp.push_back(w);
          if (w == v) break;
        }
        components_.push_back(std::move(comp));
      }
      call_stack.pop_back();
      if (!call_stack.empty()) {
        size_t parent = call_stack.back().v;
        lowlink_[parent] = std::min(lowlink_[parent], lowlink_[v]);
      }
    }
  }

  const std::vector<std::vector<size_t>>& adj_;
  std::vector<size_t> index_;
  std::vector<size_t> lowlink_;
  std::vector<bool> on_stack_;
  std::vector<size_t> stack_;
  std::vector<std::vector<size_t>> components_;
  size_t next_index_ = 0;
};

}  // namespace

Result<Stratification> Stratify(const dl::Program& program) {
  // Collect IDB predicates (those with rules).
  std::vector<std::string> preds;
  std::unordered_map<std::string, size_t> pred_id;
  for (const dl::Rule& r : program.rules) {
    if (pred_id.emplace(r.head.predicate, preds.size()).second) {
      preds.push_back(r.head.predicate);
    }
  }

  const size_t n = preds.size();
  std::vector<std::vector<size_t>> adj(n);
  // (head, body) pairs with negative dependency, for the stratification
  // check after SCCs are known.
  std::vector<std::pair<size_t, size_t>> neg_edges;

  for (const dl::Rule& r : program.rules) {
    size_t h = pred_id[r.head.predicate];
    for (const dl::Literal& l : r.body) {
      if (l.kind != dl::Literal::Kind::kAtom) continue;
      auto it = pred_id.find(l.atom.predicate);
      if (it == pred_id.end()) continue;  // EDB predicate
      adj[h].push_back(it->second);
      if (l.negated) neg_edges.emplace_back(h, it->second);
    }
  }

  std::vector<std::vector<size_t>> comps = SccFinder(n, adj).Run();

  std::vector<size_t> comp_of(n, 0);
  for (size_t c = 0; c < comps.size(); ++c) {
    for (size_t v : comps[c]) comp_of[v] = c;
  }

  // Negation must cross strata downward.
  for (auto [h, b] : neg_edges) {
    if (comp_of[h] == comp_of[b]) {
      return Status::InvalidArgument(
          "program is not stratifiable: '" + preds[h] +
          "' depends negatively on '" + preds[b] +
          "' inside a recursive component");
    }
  }

  Stratification out;
  out.strata.resize(comps.size());
  for (size_t c = 0; c < comps.size(); ++c) {
    Stratum& s = out.strata[c];
    for (size_t v : comps[c]) {
      s.predicates.push_back(preds[v]);
      out.stratum_of[preds[v]] = c;
    }
  }

  // Attach rules to the stratum of their head; detect recursion.
  for (size_t ri = 0; ri < program.rules.size(); ++ri) {
    const dl::Rule& r = program.rules[ri];
    size_t c = comp_of[pred_id[r.head.predicate]];
    out.strata[c].rule_indices.push_back(ri);
    for (const dl::Literal& l : r.body) {
      if (l.kind != dl::Literal::Kind::kAtom || l.negated) continue;
      auto it = pred_id.find(l.atom.predicate);
      if (it != pred_id.end() && comp_of[it->second] == c) {
        out.strata[c].recursive = true;
      }
    }
  }
  // A predicate depending on itself in a single-node component also counts
  // as recursive (self-loop); handled above since comp_of matches.

  return out;
}

}  // namespace mcm::eval
