// Runtime execution governor: deadlines, cooperative cancellation, and the
// structured abort taxonomy shared by the engine, the direct loops, and the
// planner's retry-with-degradation policy.
//
// The static analyzer (src/analysis/) answers "can this diverge?" before a
// single tuple is read; this layer answers "is this run still allowed to
// continue?" while the fixpoint is running. An ExecutionContext is checked
// at stratum-round granularity — cheap enough to sit on the hot path, tight
// enough that a divergent or pathological run is stopped within one round.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <string>
#include <string_view>

#include "util/status.h"

namespace mcm::runtime {

/// Why a governed run was stopped. Recorded in eval::EvalRunInfo and in the
/// planner's attempt log; the planner retries with the next-safer method on
/// the recoverable reasons (everything except kCancelled).
enum class AbortReason : uint8_t {
  kNone = 0,          ///< run completed (or was never aborted)
  kDeadlineExceeded,  ///< wall-clock deadline passed
  kCancelled,         ///< cooperative cancellation token fired
  kIterationCap,      ///< fixpoint-round cap tripped (likely divergence)
  kTupleCap,          ///< derived-tuple cap tripped
  kMemoryBudget,      ///< approximate memory budget exceeded
};

std::string_view AbortReasonToString(AbortReason r);

/// Map a failure Status back to the abort taxonomy: kDeadlineExceeded /
/// kCancelled by status code, the cap reasons by the standard cap-trip
/// message fragments ("iteration cap", "level cap", "tuple cap", "memory
/// budget"). Returns kNone for OK statuses and unrelated errors.
AbortReason ClassifyAbort(const Status& status);

/// Which ambiguous failure classes a retry loop treats as transient. The
/// unambiguous ones are fixed: deadline expiry is never transient (the
/// budget is spent), and cap trips are never transient (divergence does not
/// go away on retry — degrade down the ladder instead).
struct TransientPolicy {
  /// Internal faults (StatusCode::kInternal) — infrastructure hiccups and
  /// injected transient faults. Retryable by default.
  bool internal = true;
  /// Cooperative cancellation. A cancelled request is usually *finished*
  /// from the caller's point of view, so the default is non-retryable; a
  /// service may opt in when cancellation can come from infrastructure
  /// rather than the client.
  bool cancelled = false;

  // -------------------------------------------------------------------------
  // Retry pacing. Deciding *whether* to retry (IsTransient) and deciding
  // *when* share one policy object so every retry loop in the system —
  // QueryService transient retries, supervisor reconnects — paces the same
  // way: exponential growth from `backoff_base_ms`, capped at
  // `backoff_cap_ms`, with a deterministic seeded jitter that de-synchronizes
  // peers without making tests flaky.

  /// First-retry delay; attempt k waits ~base << k.
  uint64_t backoff_base_ms = 5;
  /// Upper bound on any single delay.
  uint64_t backoff_cap_ms = 250;
  /// Fraction of the exponential delay that jitter may subtract (0 = none,
  /// 0.25 = up to a quarter). Jitter only ever shortens the wait, so the
  /// cap above stays a true bound.
  double backoff_jitter = 0.25;

  /// Delay in ms before retry number `attempt` (0-based). `seed` selects
  /// the jitter stream — pass something request- or replica-unique so
  /// concurrent retriers spread out instead of thundering in lockstep.
  /// Deterministic in (attempt, seed); always >= 1 and <= backoff_cap_ms.
  uint64_t NextDelay(int attempt, uint64_t seed) const;
};

/// True when `status` is worth retrying under `policy`: kUnavailable
/// (overload — the canonical client-retryable condition) always, kInternal /
/// kCancelled per the policy, everything else (OK, deadline, caps, parse /
/// semantic errors) never.
/// Replication stream errors follow the same split: a stalled transport is
/// kUnavailable (transient — poll again), while torn/corrupt/gapped streams
/// are kDataLoss and a follower needing a reseed is kFailedPrecondition —
/// both final.
bool IsTransient(const Status& status, const TransientPolicy& policy = {});

/// The same classification over the abort taxonomy: only kCancelled is
/// policy-dependent; deadline and every cap reason are never transient.
bool IsTransient(AbortReason reason, const TransientPolicy& policy = {});

/// \brief Cooperative cancellation flag, shared between the requesting
/// thread and the governed run.
///
/// Cancel() may be called from any thread; the evaluation thread polls
/// cancelled() at round boundaries. There is no forced unwinding — a run
/// stops at the next check point and surfaces Status::Cancelled.
class CancellationToken {
 public:
  void Cancel() { cancelled_.store(true, std::memory_order_relaxed); }
  bool cancelled() const {
    return cancelled_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<bool> cancelled_{false};
};

/// \brief Per-run governor state: an optional wall-clock deadline plus an
/// optional cancellation token.
///
/// Copyable and cheap: the token is shared, the deadline is a time point.
/// Tuple/iteration/memory budgets stay in the per-run option structs
/// (eval::EvalOptions, core::RunOptions); the context carries only the
/// signals that can arrive from outside the run.
class ExecutionContext {
 public:
  using Clock = std::chrono::steady_clock;

  ExecutionContext() = default;

  /// Context whose deadline is `timeout_ms` from now (0 = no deadline).
  static ExecutionContext WithTimeout(uint64_t timeout_ms);

  void SetDeadline(Clock::time_point deadline) {
    deadline_ = deadline;
    has_deadline_ = true;
  }
  void SetTimeout(std::chrono::milliseconds timeout) {
    SetDeadline(Clock::now() + timeout);
  }
  void ClearDeadline() { has_deadline_ = false; }
  bool has_deadline() const { return has_deadline_; }

  /// Seconds until the deadline (negative once passed); +inf without one.
  double RemainingSeconds() const;

  void set_cancellation(std::shared_ptr<CancellationToken> token) {
    cancellation_ = std::move(token);
  }
  const std::shared_ptr<CancellationToken>& cancellation() const {
    return cancellation_;
  }

  /// The cheap poll: cancellation first (an explicit request beats a
  /// deadline that happens to have passed too), then the deadline.
  AbortReason CheckAbort() const {
    if (cancellation_ != nullptr && cancellation_->cancelled()) {
      return AbortReason::kCancelled;
    }
    if (has_deadline_ && Clock::now() >= deadline_) {
      return AbortReason::kDeadlineExceeded;
    }
    return AbortReason::kNone;
  }

  /// CheckAbort() rendered as a Status: OK, Cancelled, or DeadlineExceeded
  /// with `what` naming the interrupted work (e.g. "stratum #2 round 17").
  Status CheckStatus(std::string_view what) const;

 private:
  Clock::time_point deadline_{};
  bool has_deadline_ = false;
  std::shared_ptr<CancellationToken> cancellation_;
};

}  // namespace mcm::runtime
