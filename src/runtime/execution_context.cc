#include "runtime/execution_context.h"

#include <limits>

namespace mcm::runtime {

std::string_view AbortReasonToString(AbortReason r) {
  switch (r) {
    case AbortReason::kNone:
      return "none";
    case AbortReason::kDeadlineExceeded:
      return "deadline_exceeded";
    case AbortReason::kCancelled:
      return "cancelled";
    case AbortReason::kIterationCap:
      return "iteration_cap";
    case AbortReason::kTupleCap:
      return "tuple_cap";
    case AbortReason::kMemoryBudget:
      return "memory_budget";
  }
  return "?";
}

AbortReason ClassifyAbort(const Status& status) {
  switch (status.code()) {
    case StatusCode::kDeadlineExceeded:
      return AbortReason::kDeadlineExceeded;
    case StatusCode::kCancelled:
      return AbortReason::kCancelled;
    case StatusCode::kUnsafe: {
      const std::string& msg = status.message();
      if (msg.find("iteration cap") != std::string::npos ||
          msg.find("level cap") != std::string::npos) {
        return AbortReason::kIterationCap;
      }
      if (msg.find("tuple cap") != std::string::npos) {
        return AbortReason::kTupleCap;
      }
      if (msg.find("memory budget") != std::string::npos) {
        return AbortReason::kMemoryBudget;
      }
      return AbortReason::kNone;
    }
    default:
      return AbortReason::kNone;
  }
}

bool IsTransient(const Status& status, const TransientPolicy& policy) {
  switch (status.code()) {
    case StatusCode::kUnavailable:
      return true;
    case StatusCode::kInternal:
      return policy.internal;
    case StatusCode::kCancelled:
      return policy.cancelled;
    case StatusCode::kDataLoss:
      // Corrupt or torn durable state does not heal on retry; retrying a
      // kDataLoss recovery verdict would only storm the broken WAL. The
      // same holds for a replication stream verdict: a torn stream,
      // checksum-corrupt frame, or sequence gap means bytes are gone.
      return false;
    case StatusCode::kFailedPrecondition:
      // The system must change state before the call can succeed (e.g. a
      // replication follower that outran the retained WAL needs a reseed);
      // retrying the same call in the same state is guaranteed to fail.
      return false;
    default:
      // OK is not a failure; deadline budgets are spent; cap trips
      // (kUnsafe) mean divergence, which a retry only repeats.
      return false;
  }
}

bool IsTransient(AbortReason reason, const TransientPolicy& policy) {
  return reason == AbortReason::kCancelled && policy.cancelled;
}

ExecutionContext ExecutionContext::WithTimeout(uint64_t timeout_ms) {
  ExecutionContext ctx;
  if (timeout_ms > 0) {
    ctx.SetTimeout(std::chrono::milliseconds(timeout_ms));
  }
  return ctx;
}

double ExecutionContext::RemainingSeconds() const {
  if (!has_deadline_) return std::numeric_limits<double>::infinity();
  return std::chrono::duration<double>(deadline_ - Clock::now()).count();
}

Status ExecutionContext::CheckStatus(std::string_view what) const {
  switch (CheckAbort()) {
    case AbortReason::kNone:
      return Status::OK();
    case AbortReason::kCancelled:
      return Status::Cancelled("evaluation cancelled in " + std::string(what));
    case AbortReason::kDeadlineExceeded:
      return Status::DeadlineExceeded("wall-clock deadline exceeded in " +
                                      std::string(what));
    default:
      return Status::Internal("unexpected abort reason from context check");
  }
}

}  // namespace mcm::runtime
