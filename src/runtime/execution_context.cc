#include "runtime/execution_context.h"

#include <algorithm>
#include <limits>

namespace mcm::runtime {

std::string_view AbortReasonToString(AbortReason r) {
  switch (r) {
    case AbortReason::kNone:
      return "none";
    case AbortReason::kDeadlineExceeded:
      return "deadline_exceeded";
    case AbortReason::kCancelled:
      return "cancelled";
    case AbortReason::kIterationCap:
      return "iteration_cap";
    case AbortReason::kTupleCap:
      return "tuple_cap";
    case AbortReason::kMemoryBudget:
      return "memory_budget";
  }
  return "?";
}

AbortReason ClassifyAbort(const Status& status) {
  switch (status.code()) {
    case StatusCode::kDeadlineExceeded:
      return AbortReason::kDeadlineExceeded;
    case StatusCode::kCancelled:
      return AbortReason::kCancelled;
    case StatusCode::kUnsafe: {
      const std::string& msg = status.message();
      if (msg.find("iteration cap") != std::string::npos ||
          msg.find("level cap") != std::string::npos) {
        return AbortReason::kIterationCap;
      }
      if (msg.find("tuple cap") != std::string::npos) {
        return AbortReason::kTupleCap;
      }
      if (msg.find("memory budget") != std::string::npos) {
        return AbortReason::kMemoryBudget;
      }
      return AbortReason::kNone;
    }
    default:
      return AbortReason::kNone;
  }
}

uint64_t TransientPolicy::NextDelay(int attempt, uint64_t seed) const {
  if (backoff_cap_ms == 0) return 1;
  uint64_t base = backoff_base_ms == 0 ? 1 : backoff_base_ms;
  // Saturating base << attempt: 64 doublings overflow long before any real
  // retry loop gets there, and the cap makes the exact value moot anyway.
  uint64_t exp = attempt >= 64 ? backoff_cap_ms
                               : std::min(base << attempt, backoff_cap_ms);
  exp = std::min(exp, backoff_cap_ms);
  double jitter = backoff_jitter;
  if (jitter < 0.0) jitter = 0.0;
  if (jitter > 1.0) jitter = 1.0;
  if (jitter > 0.0) {
    // SplitMix64 over (seed, attempt): deterministic per retrier, spread
    // across retriers. Subtract-only keeps the cap a hard bound.
    uint64_t z = seed + 0x9e3779b97f4a7c15ULL * (static_cast<uint64_t>(attempt) + 1);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    z ^= z >> 31;
    double frac = static_cast<double>(z >> 11) * (1.0 / 9007199254740992.0);
    exp -= static_cast<uint64_t>(static_cast<double>(exp) * jitter * frac);
  }
  return exp == 0 ? 1 : exp;
}

bool IsTransient(const Status& status, const TransientPolicy& policy) {
  switch (status.code()) {
    case StatusCode::kUnavailable:
      return true;
    case StatusCode::kInternal:
      return policy.internal;
    case StatusCode::kCancelled:
      return policy.cancelled;
    case StatusCode::kDataLoss:
      // Corrupt or torn durable state does not heal on retry; retrying a
      // kDataLoss recovery verdict would only storm the broken WAL. The
      // same holds for a replication stream verdict: a torn stream,
      // checksum-corrupt frame, or sequence gap means bytes are gone.
      return false;
    case StatusCode::kFailedPrecondition:
      // The system must change state before the call can succeed (e.g. a
      // replication follower that outran the retained WAL needs a reseed);
      // retrying the same call in the same state is guaranteed to fail.
      return false;
    default:
      // OK is not a failure; deadline budgets are spent; cap trips
      // (kUnsafe) mean divergence, which a retry only repeats.
      return false;
  }
}

bool IsTransient(AbortReason reason, const TransientPolicy& policy) {
  return reason == AbortReason::kCancelled && policy.cancelled;
}

ExecutionContext ExecutionContext::WithTimeout(uint64_t timeout_ms) {
  ExecutionContext ctx;
  if (timeout_ms > 0) {
    ctx.SetTimeout(std::chrono::milliseconds(timeout_ms));
  }
  return ctx;
}

double ExecutionContext::RemainingSeconds() const {
  if (!has_deadline_) return std::numeric_limits<double>::infinity();
  return std::chrono::duration<double>(deadline_ - Clock::now()).count();
}

Status ExecutionContext::CheckStatus(std::string_view what) const {
  switch (CheckAbort()) {
    case AbortReason::kNone:
      return Status::OK();
    case AbortReason::kCancelled:
      return Status::Cancelled("evaluation cancelled in " + std::string(what));
    case AbortReason::kDeadlineExceeded:
      return Status::DeadlineExceeded("wall-clock deadline exceeded in " +
                                      std::string(what));
    default:
      return Status::Internal("unexpected abort reason from context check");
  }
}

}  // namespace mcm::runtime
