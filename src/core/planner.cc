#include "core/planner.h"

#include <unordered_set>

#include "core/solver.h"
#include "datalog/validate.h"
#include "eval/engine.h"
#include "rewrite/csl.h"
#include "rewrite/magic.h"
#include "rewrite/strongly_linear.h"

namespace mcm::core {

std::string PlanKindToString(PlanKind k) {
  switch (k) {
    case PlanKind::kCounting:
      return "counting";
    case PlanKind::kMagicCounting:
      return "magic_counting";
    case PlanKind::kMagicSets:
      return "magic_sets";
    case PlanKind::kBottomUp:
      return "bottom_up";
  }
  return "?";
}

namespace {

/// Split the program into the goal predicate's own rules and the support
/// rules (which must not depend on the goal predicate). The goal rules can
/// then be matched against the CSL / strongly-linear shapes while the
/// support rules materialize any derived L/E/R predicates.
struct GoalSplit {
  dl::Program goal_part;  ///< rules for the goal predicate, plus the query
  dl::Program support;    ///< everything else (may be empty)
};

Result<GoalSplit> SplitByGoal(const dl::Program& program) {
  if (program.queries.size() != 1) {
    return Status::Unsupported("planner expects exactly one query");
  }
  const std::string& p = program.queries[0].goal.predicate;

  GoalSplit split;
  for (const dl::Rule& r : program.rules) {
    if (r.head.predicate == p) {
      split.goal_part.rules.push_back(r);
    } else {
      // Support rules must not depend on the recursive predicate.
      for (const dl::Literal& lit : r.body) {
        if (lit.kind == dl::Literal::Kind::kAtom &&
            lit.atom.predicate == p) {
          return Status::Unsupported(
              "predicate '" + r.head.predicate +
              "' depends on the recursive query predicate");
        }
      }
      split.support.rules.push_back(r);
    }
  }
  split.goal_part.queries = program.queries;
  return split;
}

}  // namespace

Result<PlanReport> SolveProgram(Database* db, const dl::Program& program,
                                const PlannerOptions& options) {
  // One analyzer run replaces the per-engine dl::Validate calls: planning
  // aborts on errors, warnings ride along in the report, and the static
  // counting-safety verdicts gate the strategy choice below.
  analysis::AnalysisResult local_analysis;
  const analysis::AnalysisResult* analysis = options.analysis;
  if (analysis == nullptr) {
    analysis::AnalyzeOptions aopts;
    aopts.db = db;
    local_analysis = analysis::Analyze(program, aopts);
    analysis = &local_analysis;
  }
  MCM_RETURN_NOT_OK(analysis->ToStatus());
  if (program.queries.size() != 1) {
    return Status::Unsupported("planner expects exactly one query");
  }
  const dl::Query& query = program.queries[0];

  auto finish_report = [&analysis](PlanReport report) {
    report.diagnostics = analysis->diagnostics.diagnostics();
    report.safety = analysis->safety;
    return report;
  };

  AccessStats before = db->stats();

  // --- Path 1: magic counting on a (possibly derived / composed)
  // strongly linear query. ---
  if (options.allow_magic_counting) {
    auto split = SplitByGoal(program);
    if (split.ok()) {
      // Canonical shape first (no materialization at all), then the
      // strongly linear generalization (conjunctive L/E/R, materialized).
      Result<rewrite::CslQuery> csl = rewrite::RecognizeCsl(split->goal_part);
      Result<rewrite::StronglyLinearQuery> slq =
          csl.ok() ? Status::Unsupported("csl matched")
                   : rewrite::RecognizeStronglyLinear(split->goal_part);
      Result<rewrite::ReverseCsl> rev =
          (csl.ok() || slq.ok())
              ? Status::Unsupported("forward form matched")
              : rewrite::RecognizeReverseCsl(split->goal_part,
                                             "mcm_eswap");
      if (csl.ok() || slq.ok() || rev.ok()) {
        // Materialize derived support predicates first.
        if (!split->support.rules.empty()) {
          eval::EvalOptions eopts;
          eopts.assume_validated = true;
          eval::Engine engine(db, eopts);
          MCM_RETURN_NOT_OK(engine.Run(split->support));
        }
        std::string how;
        if (!csl.ok() && slq.ok()) {
          csl = rewrite::MaterializeStronglyLinear(db, *slq);
          how = " via composed L/E/R (" + slq->ToString() + ")";
        } else if (!csl.ok() && rev.ok()) {
          // Reverse-bound query P(X, b): run the mirrored forward query
          // over (L'=R, E'=E swapped, R'=L).
          MCM_RETURN_NOT_OK(rewrite::MaterializeSwappedE(db, rev->original_e,
                                                         "mcm_eswap"));
          csl = rev->csl;
          how = " via reverse binding (mirrored query)";
        }
        if (csl.ok() && db->Find(csl->l) != nullptr &&
            db->Find(csl->e) != nullptr && db->Find(csl->r) != nullptr) {
          Value a = rewrite::ResolveSource(*csl, db);
          CslSolver solver(db, csl->l, csl->e, csl->r, a);

          // Plain counting only over the analyzer's dead body: the static
          // verdict must prove the magic graph acyclic, otherwise the
          // planner refuses and stays on the always-safe MC method.
          std::string counting_note;
          if (options.allow_plain_counting) {
            analysis::Verdict verdict =
                analysis->safety.VerdictFor("counting");
            if (verdict == analysis::Verdict::kSafe) {
              auto run = solver.RunCounting(options.run);
              if (run.ok()) {
                PlanReport report;
                report.kind = PlanKind::kCounting;
                report.description =
                    "pure counting (statically proven safe: acyclic magic "
                    "graph) over " + csl->ToString() + how;
                report.detected_class = run->detected_class;
                for (Value v : run->answers) {
                  report.results.push_back(Tuple{v});
                }
                AccessStats after = db->stats();
                report.stats.tuples_read =
                    after.tuples_read - before.tuples_read;
                return finish_report(std::move(report));
              }
              counting_note =
                  "; counting attempt failed (" + run.status().ToString() +
                  "), fell back to magic counting";
            } else if (verdict == analysis::Verdict::kUnsafe) {
              counting_note =
                  "; plain counting refused: statically unsafe "
                  "(cyclic magic graph)";
            } else {
              counting_note =
                  "; plain counting refused: safety not statically "
                  "decidable";
            }
          }

          MCM_ASSIGN_OR_RETURN(
              MethodRun run,
              solver.RunMagicCounting(options.variant, options.mode,
                                      options.run));
          PlanReport report;
          report.kind = PlanKind::kMagicCounting;
          report.description =
              "magic counting (" + McVariantToString(options.variant) + "/" +
              McModeToString(options.mode) + ") over " + csl->ToString() +
              how +
              (split->support.rules.empty() ? ""
                                            : " with materialized support") +
              counting_note;
          report.detected_class = run.detected_class;
          for (Value v : run.answers) {
            report.results.push_back(Tuple{v});
          }
          AccessStats after = db->stats();
          report.stats.tuples_read = after.tuples_read - before.tuples_read;
          return finish_report(std::move(report));
        }
      }
    }
  }

  // --- Path 2: generalized magic sets when the goal carries bindings. ---
  bool has_binding = false;
  for (const dl::Term& t : query.goal.args) {
    if (t.IsConstant()) has_binding = true;
  }
  if (options.allow_magic_sets && has_binding) {
    auto magic = rewrite::MagicRewrite(program, query.goal);
    if (magic.ok()) {
      eval::EvalOptions eopts;
      eopts.max_iterations = options.run.max_iterations;
      eopts.max_tuples = options.run.max_tuples;
      eval::Engine engine(db, eopts);
      // Note: the rewritten program is *not* the analyzed one (magic
      // predicates violate the head-boundedness checks by design), so it is
      // validated by the engine as usual.
      Status st = engine.Run(magic->program);
      if (st.ok()) {
        MCM_ASSIGN_OR_RETURN(std::vector<Tuple> tuples,
                             engine.Query(magic->adorned_goal));
        PlanReport report;
        report.kind = PlanKind::kMagicSets;
        report.description = "generalized magic sets (goal pattern drives " +
                             magic->adorned_goal.predicate + ")";
        report.results = std::move(tuples);
        AccessStats after = db->stats();
        report.stats.tuples_read = after.tuples_read - before.tuples_read;
        return finish_report(std::move(report));
      }
      // Rewriting produced a non-stratifiable or unsafe program: fall
      // through to bottom-up.
    }
  }

  // --- Path 3: plain bottom-up evaluation. ---
  eval::EvalOptions eopts;
  eopts.max_iterations = options.run.max_iterations;
  eopts.max_tuples = options.run.max_tuples;
  eopts.assume_validated = true;  // the analyzer above already validated
  eval::Engine engine(db, eopts);
  MCM_RETURN_NOT_OK(engine.Run(program));
  MCM_ASSIGN_OR_RETURN(std::vector<Tuple> tuples, engine.Query(query.goal));
  PlanReport report;
  report.kind = PlanKind::kBottomUp;
  report.description = "bottom-up seminaive evaluation";
  report.results = std::move(tuples);
  AccessStats after = db->stats();
  report.stats.tuples_read = after.tuples_read - before.tuples_read;
  return finish_report(std::move(report));
}

}  // namespace mcm::core
