#include "core/planner.h"

#include <functional>
#include <unordered_set>
#include <utility>

#include "core/solver.h"
#include "datalog/validate.h"
#include "eval/engine.h"
#include "rewrite/csl.h"
#include "rewrite/magic.h"
#include "rewrite/strongly_linear.h"
#include "util/fault_injection.h"
#include "util/string_util.h"
#include "util/timer.h"

namespace mcm::core {

std::string PlanKindToString(PlanKind k) {
  switch (k) {
    case PlanKind::kCounting:
      return "counting";
    case PlanKind::kMagicCounting:
      return "magic_counting";
    case PlanKind::kMagicSets:
      return "magic_sets";
    case PlanKind::kBottomUp:
      return "bottom_up";
  }
  return "?";
}

std::string PlanAttempt::ToString() const {
  std::string out = method + ": ";
  if (status.ok()) {
    out += "ok";
  } else {
    out += std::string(StatusCodeToString(status.code()));
    if (abort != runtime::AbortReason::kNone) {
      out += " [" + std::string(runtime::AbortReasonToString(abort)) + "]";
    }
  }
  if (predicted_reads >= 0) {
    out += StringPrintf(" (%.2fms, predicted %.0f reads)", seconds * 1e3,
                        predicted_reads);
  } else {
    out += StringPrintf(" (%.2fms)", seconds * 1e3);
  }
  return out;
}

namespace {

/// "counting: Unsafe [iteration_cap] (0.4ms) -> magic_sets: ok (1.2ms)".
std::string AttemptLogSummary(const std::vector<PlanAttempt>& attempts) {
  std::string out;
  for (size_t i = 0; i < attempts.size(); ++i) {
    if (i > 0) out += " -> ";
    out += attempts[i].ToString();
  }
  return out;
}

/// Fold the attempt log into a final failure Status so callers that only
/// see the error still learn what was tried.
Status WithAttemptLog(const Status& last,
                      const std::vector<PlanAttempt>& attempts) {
  if (attempts.size() <= 1) return last;
  return Status(last.code(),
                last.message() + "; attempts: " + AttemptLogSummary(attempts));
}

/// Position of a variant in the Figure 3 degradation order (counting ->
/// single -> multiple -> recurring -> magic sets). RecurringSmart is
/// recurring with a faster Step 1, so it degrades like recurring.
int DegradationRank(McVariant v) {
  switch (v) {
    case McVariant::kBasic:
      return 0;
    case McVariant::kSingle:
      return 1;
    case McVariant::kMultiple:
      return 2;
    case McVariant::kRecurring:
    case McVariant::kRecurringSmart:
      return 3;
  }
  return 0;
}

/// An abort the degradation ladder may recover from; cancellation and
/// genuine errors (parse, arity, internal) always propagate.
bool IsRecoverableAbort(const Status& st) {
  return st.IsUnsafe() || st.IsDeadlineExceeded();
}

/// Ladder method id ("mc/multiple/int") for a variant + mode; preserves
/// recurring_smart so the id round-trips through ParseMcId for execution.
std::string McLadderId(McVariant variant, McMode mode) {
  return "mc/" + McVariantToString(variant) + "/" +
         (mode == McMode::kIndependent ? "ind" : "int");
}

bool ParseMcId(const std::string& id, McVariant* variant, McMode* mode);

/// The cost model's prediction for a ladder method id; negative when the
/// table has no row (not computed, or an unknown id). RecurringSmart reads
/// recurring's row: same partition, faster Step 1.
double PredictedFor(const analysis::CostReport& cost, const std::string& id) {
  if (!cost.computed) return -1.0;
  std::string key = id;
  McVariant v{};
  McMode m{};
  if (ParseMcId(id, &v, &m)) {
    if (v == McVariant::kRecurringSmart) v = McVariant::kRecurring;
    key = "mc/" + McVariantToString(v) + "/" +
          (m == McMode::kIndependent ? "ind" : "int");
  }
  const analysis::CostEstimate* e = cost.EstimateFor(key);
  return e != nullptr && e->finite ? e->predicted : -1.0;
}

/// Inverse of McCostId / the ladder id format "mc/<variant>/<ind|int>".
bool ParseMcId(const std::string& id, McVariant* variant, McMode* mode) {
  if (!StartsWith(id, "mc/")) return false;
  size_t slash = id.find('/', 3);
  if (slash == std::string::npos) return false;
  std::string v = id.substr(3, slash - 3);
  std::string m = id.substr(slash + 1);
  if (v == "basic") {
    *variant = McVariant::kBasic;
  } else if (v == "single") {
    *variant = McVariant::kSingle;
  } else if (v == "multiple") {
    *variant = McVariant::kMultiple;
  } else if (v == "recurring") {
    *variant = McVariant::kRecurring;
  } else if (v == "recurring_smart") {
    *variant = McVariant::kRecurringSmart;
  } else {
    return false;
  }
  if (m == "ind" || m == "independent") {
    *mode = McMode::kIndependent;
  } else if (m == "int" || m == "integrated") {
    *mode = McMode::kIntegrated;
  } else {
    return false;
  }
  return true;
}

/// The ordered method ids the CSL-path ladder will try, shared between
/// SolveProgram (which executes them) and ExplainProgram (which only
/// reports them). Ids use the cost/verdict table naming: "counting",
/// "mc/<variant>/<ind|int>", "magic_sets".
///
/// With auto_select and a computed cost report the order is the
/// predicted-cost ranking; otherwise it is the fixed Figure 3 walk
/// (configured method, then safer variants, then magic sets), with plain
/// counting in front only when allowed and statically safe (or dynamically
/// attempted). `counting_note` receives the refusal note, `ranked` whether
/// the cost ranking drove the order.
std::vector<std::string> LadderMethodIds(
    const PlannerOptions& options, const analysis::AnalysisResult& analysis,
    std::string* counting_note, bool* ranked) {
  std::vector<std::string> ids;
  analysis::Verdict counting_verdict = analysis.safety.VerdictFor("counting");
  *ranked = false;

  // Circuit-breaker override: straight to the safe bottom rung.
  if (options.force_safe_method) {
    *counting_note = "; counting rungs skipped (safe method forced)";
    ids.push_back("magic_sets");
    return ids;
  }

  *ranked = options.auto_select && analysis.cost.computed &&
            !analysis.cost.ranking.empty();

  if (*ranked) {
    // The ranking already contains exactly the safe finite methods,
    // cheapest first ("counting" only when statically safe).
    for (const std::string& method : analysis.cost.ranking) {
      if (method == "magic_sets" && !options.allow_magic_sets) continue;
      ids.push_back(method);
    }
    if (options.allow_plain_counting && options.attempt_unsafe_counting &&
        counting_verdict != analysis::Verdict::kSafe) {
      ids.insert(ids.begin(), "counting");
    }
    if (!options.allow_fallback && ids.size() > 1) ids.resize(1);
    return ids;
  }

  if (options.allow_plain_counting) {
    if (counting_verdict == analysis::Verdict::kSafe ||
        options.attempt_unsafe_counting) {
      ids.push_back("counting");
    } else if (counting_verdict == analysis::Verdict::kUnsafe) {
      *counting_note =
          "; plain counting refused: statically unsafe "
          "(cyclic magic graph)";
    } else {
      *counting_note =
          "; plain counting refused: safety not statically "
          "decidable";
    }
  }
  ids.push_back(McLadderId(options.variant, options.mode));
  if (options.allow_fallback) {
    // Safer MC variants than the configured one, then magic sets.
    for (McVariant v : {McVariant::kSingle, McVariant::kMultiple,
                        McVariant::kRecurring}) {
      if (DegradationRank(v) > DegradationRank(options.variant)) {
        ids.push_back(McLadderId(v, options.mode));
      }
    }
    if (options.allow_magic_sets) ids.push_back("magic_sets");
  }
  return ids;
}

/// Split the program into the goal predicate's own rules and the support
/// rules (which must not depend on the goal predicate). The goal rules can
/// then be matched against the CSL / strongly-linear shapes while the
/// support rules materialize any derived L/E/R predicates.
struct GoalSplit {
  dl::Program goal_part;  ///< rules for the goal predicate, plus the query
  dl::Program support;    ///< everything else (may be empty)
};

Result<GoalSplit> SplitByGoal(const dl::Program& program) {
  if (program.queries.size() != 1) {
    return Status::Unsupported("planner expects exactly one query");
  }
  const std::string& p = program.queries[0].goal.predicate;

  GoalSplit split;
  for (const dl::Rule& r : program.rules) {
    if (r.head.predicate == p) {
      split.goal_part.rules.push_back(r);
    } else {
      // Support rules must not depend on the recursive predicate.
      for (const dl::Literal& lit : r.body) {
        if (lit.kind == dl::Literal::Kind::kAtom &&
            lit.atom.predicate == p) {
          return Status::Unsupported(
              "predicate '" + r.head.predicate +
              "' depends on the recursive query predicate");
        }
      }
      split.support.rules.push_back(r);
    }
  }
  split.goal_part.queries = program.queries;
  return split;
}

}  // namespace

Result<PlanReport> SolveProgram(Database* db, const dl::Program& program,
                                const PlannerOptions& options) {
  // One analyzer run replaces the per-engine dl::Validate calls: planning
  // aborts on errors, warnings ride along in the report, and the static
  // counting-safety verdicts gate the strategy choice below.
  analysis::AnalysisResult local_analysis;
  const analysis::AnalysisResult* analysis = options.analysis;
  if (analysis == nullptr) {
    analysis::AnalyzeOptions aopts;
    aopts.db = db;
    local_analysis = analysis::Analyze(program, aopts);
    analysis = &local_analysis;
  }
  MCM_RETURN_NOT_OK(analysis->ToStatus());
  if (program.queries.size() != 1) {
    return Status::Unsupported("planner expects exactly one query");
  }
  const dl::Query& query = program.queries[0];

  std::vector<PlanAttempt> attempts;
  auto finish_report = [&analysis, &attempts](PlanReport report) {
    report.diagnostics = analysis->diagnostics.diagnostics();
    report.safety = analysis->safety;
    report.cost = analysis->cost;
    report.attempts = std::move(attempts);
    return report;
  };

  // Governor for the non-ladder paths (support materialization, magic
  // rewriting, bottom-up). Ladder tiers build their own per-attempt
  // deadline inside the solver so a retry gets a fresh budget.
  runtime::ExecutionContext planner_ctx;
  const runtime::ExecutionContext* governor = options.run.context;
  if (governor == nullptr && options.run.timeout_ms > 0) {
    planner_ctx =
        runtime::ExecutionContext::WithTimeout(options.run.timeout_ms);
    governor = &planner_ctx;
  }
  auto governed_eopts = [&options, governor]() {
    eval::EvalOptions eopts;
    eopts.max_iterations = options.run.max_iterations;
    eopts.max_tuples = options.run.max_tuples;
    eopts.max_memory_bytes = options.run.max_memory_bytes;
    eopts.context = governor;
    return eopts;
  };

  AccessStats before = db->stats();

  // --- Path 1: magic counting on a (possibly derived / composed)
  // strongly linear query. ---
  if (options.allow_magic_counting) {
    auto split = SplitByGoal(program);
    if (split.ok()) {
      // Canonical shape first (no materialization at all), then the
      // strongly linear generalization (conjunctive L/E/R, materialized).
      Result<rewrite::CslQuery> csl = rewrite::RecognizeCsl(split->goal_part);
      Result<rewrite::StronglyLinearQuery> slq =
          csl.ok() ? Status::Unsupported("csl matched")
                   : rewrite::RecognizeStronglyLinear(split->goal_part);
      Result<rewrite::ReverseCsl> rev =
          (csl.ok() || slq.ok())
              ? Status::Unsupported("forward form matched")
              : rewrite::RecognizeReverseCsl(split->goal_part,
                                             "mcm_eswap");
      if (csl.ok() || slq.ok() || rev.ok()) {
        // Materialize derived support predicates first.
        if (!split->support.rules.empty()) {
          eval::EvalOptions eopts = governed_eopts();
          eopts.assume_validated = true;
          eval::Engine engine(db, eopts);
          MCM_RETURN_NOT_OK(engine.Run(split->support));
        }
        std::string how;
        if (!csl.ok() && slq.ok()) {
          csl = rewrite::MaterializeStronglyLinear(db, *slq);
          how = " via composed L/E/R (" + slq->ToString() + ")";
        } else if (!csl.ok() && rev.ok()) {
          // Reverse-bound query P(X, b): run the mirrored forward query
          // over (L'=R, E'=E swapped, R'=L).
          MCM_RETURN_NOT_OK(rewrite::MaterializeSwappedE(db, rev->original_e,
                                                         "mcm_eswap"));
          csl = rev->csl;
          how = " via reverse binding (mirrored query)";
        }
        if (csl.ok() && db->Find(csl->l) != nullptr &&
            db->Find(csl->e) != nullptr && db->Find(csl->r) != nullptr) {
          Value a = rewrite::ResolveSource(*csl, db);
          CslSolver solver(db, csl->l, csl->e, csl->r, a);

          // Every rung evaluates a machine-generated rewrite of the program
          // the analyzer above already validated, so the engine may skip its
          // per-rung re-validation.
          RunOptions run_options = options.run;
          run_options.assume_validated = true;

          // Build the degradation ladder: the predicted-cost ranking when
          // auto_select has a computed cost table, the fixed Figure 3 walk
          // otherwise. Tier 0 — plain counting — is gated by the static
          // verdict: the analyzer must prove the magic graph acyclic,
          // unless the caller opted into a dynamic attempt under the
          // governor (or the ranking admitted it as statically safe).
          struct Tier {
            std::string name;  ///< also the fault-injection site suffix
            PlanKind kind;
            std::string description;
            std::function<Result<MethodRun>()> run;
          };
          std::string counting_note;
          bool ranked = false;
          std::vector<std::string> ids =
              LadderMethodIds(options, *analysis, &counting_note, &ranked);
          analysis::Verdict counting_verdict =
              analysis->safety.VerdictFor("counting");
          std::vector<Tier> ladder;
          for (const std::string& id : ids) {
            if (id == "counting") {
              std::string description =
                  counting_verdict == analysis::Verdict::kSafe
                      ? "pure counting (statically proven safe: acyclic "
                        "magic graph)"
                      : std::string("pure counting (statically ") +
                            (counting_verdict == analysis::Verdict::kUnsafe
                                 ? "unsafe"
                                 : "undecidable") +
                            ", attempted under the governor)";
              ladder.push_back({"counting", PlanKind::kCounting,
                                std::move(description),
                                [&solver, &run_options] {
                                  return solver.RunCounting(run_options);
                                }});
            } else if (id == "magic_sets") {
              ladder.push_back({"magic_sets", PlanKind::kMagicSets,
                                "magic sets (safe bottom of the degradation "
                                "ladder)",
                                [&solver, &run_options] {
                                  return solver.RunMagicSets(run_options);
                                }});
            } else {
              McVariant variant{};
              McMode mode{};
              if (!ParseMcId(id, &variant, &mode)) continue;
              // Full-word tier name: the fault-injection sites and attempt
              // logs predate the short cost-table ids and keep their form.
              std::string label =
                  McVariantToString(variant) + "/" + McModeToString(mode);
              ladder.push_back({"mc/" + label, PlanKind::kMagicCounting,
                                "magic counting (" + label + ")",
                                [&solver, &run_options, variant, mode] {
                                  return solver.RunMagicCounting(
                                      variant, mode, run_options);
                                }});
            }
          }
          if (ranked) {
            counting_note += "; method order auto-selected by predicted cost";
          }

          Status last = Status::OK();
          for (size_t ti = 0; ti < ladder.size(); ++ti) {
            const Tier& tier = ladder[ti];
            Timer attempt_timer;
            Status injected =
                util::FaultInjection::Instance().Check("planner/" + tier.name);
            Result<MethodRun> run = injected.ok()
                                        ? tier.run()
                                        : Result<MethodRun>(injected);
            PlanAttempt attempt;
            attempt.method = tier.name;
            attempt.status = run.ok() ? Status::OK() : run.status();
            attempt.abort = runtime::ClassifyAbort(attempt.status);
            attempt.seconds = attempt_timer.ElapsedSeconds();
            attempt.predicted_reads = PredictedFor(analysis->cost, tier.name);
            attempts.push_back(std::move(attempt));
            if (run.ok()) {
              PlanReport report;
              report.kind = tier.kind;
              report.predicted_reads = attempts.back().predicted_reads;
              report.description =
                  tier.description + " over " + csl->ToString() + how +
                  (split->support.rules.empty() ? ""
                                                : " with materialized "
                                                  "support") +
                  counting_note;
              if (attempts.size() > 1) {
                report.description +=
                    "; degradation ladder: " + AttemptLogSummary(attempts);
              }
              report.detected_class = run->detected_class;
              for (Value v : run->answers) {
                report.results.push_back(Tuple{v});
              }
              AccessStats after = db->stats();
              report.stats.tuples_read =
                  after.tuples_read - before.tuples_read;
              return finish_report(std::move(report));
            }
            last = run.status();
            if (!options.allow_fallback || !IsRecoverableAbort(last) ||
                ti + 1 == ladder.size()) {
              return WithAttemptLog(last, attempts);
            }
          }
          return WithAttemptLog(last, attempts);  // unreachable: ladder != []
        }
      }
    }
  }

  // --- Path 2: generalized magic sets when the goal carries bindings. ---
  bool has_binding = false;
  for (const dl::Term& t : query.goal.args) {
    if (t.IsConstant()) has_binding = true;
  }
  if (options.allow_magic_sets && has_binding) {
    auto magic = rewrite::MagicRewrite(program, query.goal);
    if (magic.ok()) {
      MCM_RETURN_NOT_OK(
          util::FaultInjection::Instance().Check("planner/magic_rewrite"));
      eval::EvalOptions eopts = governed_eopts();
      eval::Engine engine(db, eopts);
      // Note: the rewritten program is *not* the analyzed one (magic
      // predicates violate the head-boundedness checks by design), so it is
      // validated by the engine as usual.
      Timer attempt_timer;
      Status st = engine.Run(magic->program);
      attempts.push_back(PlanAttempt{"magic_rewrite", st,
                                     runtime::ClassifyAbort(st),
                                     attempt_timer.ElapsedSeconds()});
      if (st.ok()) {
        MCM_ASSIGN_OR_RETURN(std::vector<Tuple> tuples,
                             engine.Query(magic->adorned_goal));
        PlanReport report;
        report.kind = PlanKind::kMagicSets;
        report.description = "generalized magic sets (goal pattern drives " +
                             magic->adorned_goal.predicate + ")";
        report.results = std::move(tuples);
        AccessStats after = db->stats();
        report.stats.tuples_read = after.tuples_read - before.tuples_read;
        return finish_report(std::move(report));
      }
      // The governor's deadline/cancellation is global to this plan, so a
      // retry cannot succeed — propagate. Other failures (non-stratifiable
      // or unsafe rewritten program, cap trips) fall through to bottom-up.
      if (st.IsCancelled() || st.IsDeadlineExceeded() ||
          !options.allow_fallback) {
        return WithAttemptLog(st, attempts);
      }
    }
  }

  // --- Path 3: plain bottom-up evaluation. ---
  MCM_RETURN_NOT_OK(
      util::FaultInjection::Instance().Check("planner/bottom_up"));
  eval::EvalOptions eopts = governed_eopts();
  eopts.assume_validated = true;  // the analyzer above already validated
  eval::Engine engine(db, eopts);
  Timer attempt_timer;
  Status st = engine.Run(program);
  attempts.push_back(PlanAttempt{"bottom_up", st, runtime::ClassifyAbort(st),
                                 attempt_timer.ElapsedSeconds()});
  if (!st.ok()) return WithAttemptLog(st, attempts);
  MCM_ASSIGN_OR_RETURN(std::vector<Tuple> tuples, engine.Query(query.goal));
  PlanReport report;
  report.kind = PlanKind::kBottomUp;
  report.description = "bottom-up seminaive evaluation";
  report.results = std::move(tuples);
  AccessStats after = db->stats();
  report.stats.tuples_read = after.tuples_read - before.tuples_read;
  return finish_report(std::move(report));
}

Result<PlanReport> ExplainProgram(const Database* db,
                                  const dl::Program& program,
                                  const PlannerOptions& options) {
  analysis::AnalysisResult local_analysis;
  const analysis::AnalysisResult* analysis = options.analysis;
  if (analysis == nullptr) {
    analysis::AnalyzeOptions aopts;
    aopts.db = db;
    local_analysis = analysis::Analyze(program, aopts);
    analysis = &local_analysis;
  }
  MCM_RETURN_NOT_OK(analysis->ToStatus());
  if (program.queries.size() != 1) {
    return Status::Unsupported("planner expects exactly one query");
  }
  const dl::Query& query = program.queries[0];

  PlanReport report;
  report.diagnostics = analysis->diagnostics.diagnostics();
  report.safety = analysis->safety;
  report.cost = analysis->cost;

  // Mirror SolveProgram's strategy choice without executing anything: the
  // safety pass already classified the query form, so the CSL path is taken
  // exactly when it recognized a strongly linear shape.
  if (options.allow_magic_counting &&
      analysis->safety.form != analysis::QueryForm::kNotStronglyLinear) {
    std::string counting_note;
    bool ranked = false;
    std::vector<std::string> ids =
        LadderMethodIds(options, *analysis, &counting_note, &ranked);
    if (!ids.empty()) {
      const std::string& chosen = ids.front();
      if (chosen == "counting") {
        report.kind = PlanKind::kCounting;
      } else if (chosen == "magic_sets") {
        report.kind = PlanKind::kMagicSets;
      } else {
        report.kind = PlanKind::kMagicCounting;
      }
      report.predicted_reads = PredictedFor(analysis->cost, chosen);
      report.description =
          "explain: would run " + chosen + " over " +
          analysis->safety.signature +
          (ranked ? " (order auto-selected by predicted cost)" : "") +
          counting_note + "; ladder: " + Join(ids, " -> ");
      for (const std::string& id : ids) {
        PlanAttempt attempt;
        attempt.method = id;
        attempt.predicted_reads = PredictedFor(analysis->cost, id);
        report.attempts.push_back(std::move(attempt));
      }
      return report;
    }
  }

  bool has_binding = false;
  for (const dl::Term& t : query.goal.args) {
    if (t.IsConstant()) has_binding = true;
  }
  if (options.allow_magic_sets && has_binding) {
    report.kind = PlanKind::kMagicSets;
    report.description =
        "explain: would run generalized magic sets (goal pattern drives " +
        query.goal.predicate + ")";
    return report;
  }
  report.kind = PlanKind::kBottomUp;
  report.description = "explain: would run bottom-up seminaive evaluation";
  return report;
}

}  // namespace mcm::core
