#include "core/planner.h"

#include <unordered_set>

#include "core/solver.h"
#include "datalog/validate.h"
#include "eval/engine.h"
#include "rewrite/csl.h"
#include "rewrite/magic.h"
#include "rewrite/strongly_linear.h"

namespace mcm::core {

std::string PlanKindToString(PlanKind k) {
  switch (k) {
    case PlanKind::kMagicCounting:
      return "magic_counting";
    case PlanKind::kMagicSets:
      return "magic_sets";
    case PlanKind::kBottomUp:
      return "bottom_up";
  }
  return "?";
}

namespace {

/// Split the program into the goal predicate's own rules and the support
/// rules (which must not depend on the goal predicate). The goal rules can
/// then be matched against the CSL / strongly-linear shapes while the
/// support rules materialize any derived L/E/R predicates.
struct GoalSplit {
  dl::Program goal_part;  ///< rules for the goal predicate, plus the query
  dl::Program support;    ///< everything else (may be empty)
};

Result<GoalSplit> SplitByGoal(const dl::Program& program) {
  if (program.queries.size() != 1) {
    return Status::Unsupported("planner expects exactly one query");
  }
  const std::string& p = program.queries[0].goal.predicate;

  GoalSplit split;
  for (const dl::Rule& r : program.rules) {
    if (r.head.predicate == p) {
      split.goal_part.rules.push_back(r);
    } else {
      // Support rules must not depend on the recursive predicate.
      for (const dl::Literal& lit : r.body) {
        if (lit.kind == dl::Literal::Kind::kAtom &&
            lit.atom.predicate == p) {
          return Status::Unsupported(
              "predicate '" + r.head.predicate +
              "' depends on the recursive query predicate");
        }
      }
      split.support.rules.push_back(r);
    }
  }
  split.goal_part.queries = program.queries;
  return split;
}

}  // namespace

Result<PlanReport> SolveProgram(Database* db, const dl::Program& program,
                                const PlannerOptions& options) {
  MCM_RETURN_NOT_OK(dl::Validate(program));
  if (program.queries.size() != 1) {
    return Status::Unsupported("planner expects exactly one query");
  }
  const dl::Query& query = program.queries[0];

  AccessStats before = db->stats();

  // --- Path 1: magic counting on a (possibly derived / composed)
  // strongly linear query. ---
  if (options.allow_magic_counting) {
    auto split = SplitByGoal(program);
    if (split.ok()) {
      // Canonical shape first (no materialization at all), then the
      // strongly linear generalization (conjunctive L/E/R, materialized).
      Result<rewrite::CslQuery> csl = rewrite::RecognizeCsl(split->goal_part);
      Result<rewrite::StronglyLinearQuery> slq =
          csl.ok() ? Status::Unsupported("csl matched")
                   : rewrite::RecognizeStronglyLinear(split->goal_part);
      Result<rewrite::ReverseCsl> rev =
          (csl.ok() || slq.ok())
              ? Status::Unsupported("forward form matched")
              : rewrite::RecognizeReverseCsl(split->goal_part,
                                             "mcm_eswap");
      if (csl.ok() || slq.ok() || rev.ok()) {
        // Materialize derived support predicates first.
        if (!split->support.rules.empty()) {
          eval::Engine engine(db);
          MCM_RETURN_NOT_OK(engine.Run(split->support));
        }
        std::string how;
        if (!csl.ok() && slq.ok()) {
          csl = rewrite::MaterializeStronglyLinear(db, *slq);
          how = " via composed L/E/R (" + slq->ToString() + ")";
        } else if (!csl.ok() && rev.ok()) {
          // Reverse-bound query P(X, b): run the mirrored forward query
          // over (L'=R, E'=E swapped, R'=L).
          MCM_RETURN_NOT_OK(rewrite::MaterializeSwappedE(db, rev->original_e,
                                                         "mcm_eswap"));
          csl = rev->csl;
          how = " via reverse binding (mirrored query)";
        }
        if (csl.ok() && db->Find(csl->l) != nullptr &&
            db->Find(csl->e) != nullptr && db->Find(csl->r) != nullptr) {
          Value a = rewrite::ResolveSource(*csl, db);
          CslSolver solver(db, csl->l, csl->e, csl->r, a);
          MCM_ASSIGN_OR_RETURN(
              MethodRun run,
              solver.RunMagicCounting(options.variant, options.mode,
                                      options.run));
          PlanReport report;
          report.kind = PlanKind::kMagicCounting;
          report.description =
              "magic counting (" + McVariantToString(options.variant) + "/" +
              McModeToString(options.mode) + ") over " + csl->ToString() +
              how +
              (split->support.rules.empty() ? ""
                                            : " with materialized support");
          report.detected_class = run.detected_class;
          for (Value v : run.answers) {
            report.results.push_back(Tuple{v});
          }
          AccessStats after = db->stats();
          report.stats.tuples_read = after.tuples_read - before.tuples_read;
          return report;
        }
      }
    }
  }

  // --- Path 2: generalized magic sets when the goal carries bindings. ---
  bool has_binding = false;
  for (const dl::Term& t : query.goal.args) {
    if (t.IsConstant()) has_binding = true;
  }
  if (options.allow_magic_sets && has_binding) {
    auto magic = rewrite::MagicRewrite(program, query.goal);
    if (magic.ok()) {
      eval::EvalOptions eopts;
      eopts.max_iterations = options.run.max_iterations;
      eopts.max_tuples = options.run.max_tuples;
      eval::Engine engine(db, eopts);
      Status st = engine.Run(magic->program);
      if (st.ok()) {
        MCM_ASSIGN_OR_RETURN(std::vector<Tuple> tuples,
                             engine.Query(magic->adorned_goal));
        PlanReport report;
        report.kind = PlanKind::kMagicSets;
        report.description = "generalized magic sets (goal pattern drives " +
                             magic->adorned_goal.predicate + ")";
        report.results = std::move(tuples);
        AccessStats after = db->stats();
        report.stats.tuples_read = after.tuples_read - before.tuples_read;
        return report;
      }
      // Rewriting produced a non-stratifiable or unsafe program: fall
      // through to bottom-up.
    }
  }

  // --- Path 3: plain bottom-up evaluation. ---
  eval::EvalOptions eopts;
  eopts.max_iterations = options.run.max_iterations;
  eopts.max_tuples = options.run.max_tuples;
  eval::Engine engine(db, eopts);
  MCM_RETURN_NOT_OK(engine.Run(program));
  MCM_ASSIGN_OR_RETURN(std::vector<Tuple> tuples, engine.Query(query.goal));
  PlanReport report;
  report.kind = PlanKind::kBottomUp;
  report.description = "bottom-up seminaive evaluation";
  report.results = std::move(tuples);
  AccessStats after = db->stats();
  report.stats.tuples_read = after.tuples_read - before.tuples_read;
  return report;
}

}  // namespace mcm::core
