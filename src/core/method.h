// Method taxonomy and run results.
//
// The paper's family is indexed by two coordinates (Section 10):
//   * variant:  basic / single / multiple / recurring — how precisely Step 1
//     classifies magic-graph nodes (plus `recurring_smart`, the linear-time
//     SCC refinement sketched at the end of Section 9);
//   * mode: independent / integrated — whether Step 2 runs the counting and
//     magic parts separately (Section 4) or pipes the magic results into the
//     counting fixpoint (Section 5).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "graph/classify.h"
#include "runtime/execution_context.h"
#include "storage/access_stats.h"
#include "storage/value.h"
#include "util/status.h"

namespace mcm::core {

enum class McVariant : uint8_t {
  kBasic,
  kSingle,
  kMultiple,
  kRecurring,
  kRecurringSmart,  ///< Tarjan-based Step 1 (Section 9's refinement)
};

enum class McMode : uint8_t { kIndependent, kIntegrated };

std::string McVariantToString(McVariant v);
std::string McModeToString(McMode m);

/// How Step 1 decides that a node is non-single.
enum class DetectionMode : uint8_t {
  /// Flag a node whenever it is derived a second time, even at the same
  /// index — the literal reading of the paper's Step-1 pseudo-code. Safe
  /// over-approximation: a "diamond" (two equal-length paths) sends a
  /// perfectly single node to the magic side.
  kAnyDuplicate,
  /// Flag only on re-derivation at a *different* index — exact with respect
  /// to Proposition 1 (see the correctness argument in step1.cc). Default.
  kDifferingIndex,
};

std::string DetectionModeToString(DetectionMode m);

/// Caps as actually enforced by a run, after auto-derivation. See
/// RunOptions::EffectiveCaps.
struct ResolvedCaps {
  uint64_t max_iterations = 0;  ///< never 0: the auto cap fills it in
  uint64_t max_tuples = 0;      ///< 0 = unlimited
};

/// Safety and instrumentation knobs for a method run.
struct RunOptions {
  /// Fixpoint-round cap per recursive stratum; hit => Status::Unsafe.
  /// 0 = auto: EffectiveCaps derives a cap of 4*(|L| + |R|) + 64 rounds,
  /// which every safe fixpoint on the instance is guaranteed to stay under
  /// (level counts are bounded by path lengths, which are bounded by arc
  /// counts), while a divergent counting fixpoint trips it quickly.
  uint64_t max_iterations = 0;
  /// Derived-tuple cap per recursive stratum; hit => Status::Unsafe.
  /// 0 = unlimited.
  uint64_t max_tuples = 0;
  /// Approximate memory budget for the whole database during the run; hit
  /// => Status::Unsafe. 0 = unlimited.
  uint64_t max_memory_bytes = 0;
  /// Wall-clock budget; on expiry the run aborts with
  /// Status::DeadlineExceeded. 0 = none. Ignored when `context` is set —
  /// an explicit context carries its own deadline.
  uint64_t timeout_ms = 0;
  /// Optional externally-owned governor (deadline + cancellation token).
  /// When null and timeout_ms > 0, the solver builds a per-run context.
  const runtime::ExecutionContext* context = nullptr;
  DetectionMode detection = DetectionMode::kDifferingIndex;
  /// Skip dl::Validate inside the engine for the programs a run hands it.
  /// The planner sets this: it runs the analyzer once per SolveProgram and
  /// every ladder rung then evaluates a machine-generated rewrite of that
  /// already-validated program, so per-rung re-validation is pure overhead.
  bool assume_validated = false;

  /// The single home of the default-cap policy (both the Datalog-engine
  /// solver path and the direct procedural loops resolve their caps here):
  /// max_iterations == 0 becomes 4*(l_arcs + r_arcs) + 64.
  ResolvedCaps EffectiveCaps(uint64_t l_arcs, uint64_t r_arcs) const;
};

/// \brief Outcome and cost breakdown of one method execution.
struct MethodRun {
  std::string method;           ///< e.g. "counting", "mc/single/integrated"
  std::vector<Value> answers;   ///< sorted distinct answer values

  AccessStats step1;            ///< tuple-retrieval cost of Step 1
  AccessStats step2;            ///< tuple-retrieval cost of Step 2
  AccessStats total;            ///< step1 + step2

  uint64_t step2_iterations = 0;
  double seconds = 0.0;

  size_t ms_size = 0;  ///< |MS|
  size_t rm_size = 0;  ///< |RM|
  size_t rc_size = 0;  ///< |RC| (index,value pairs)

  /// Graph class as detected by Step 1 (kRegular when the method decided to
  /// run pure counting).
  graph::GraphClass detected_class = graph::GraphClass::kRegular;

  std::string ToString() const;
};

}  // namespace mcm::core
