// CslSolver: one-stop driver for every evaluation method on a CSL query.
//
// The solver owns nothing; it runs methods against a caller-provided
// Database holding the L, E, R relations, creating (and clearing) its
// working relations (mcm_*) per run, and reports per-step cost in the
// paper's tuple-retrieval unit.
#pragma once

#include <string>

#include "core/method.h"
#include "core/step1.h"
#include "datalog/ast.h"
#include "rewrite/csl.h"
#include "rewrite/csl_rewrites.h"
#include "storage/database.h"
#include "util/status.h"

namespace mcm::core {

/// \brief Runs the counting / magic-set baselines and all magic counting
/// methods on one query instance.
class CslSolver {
 public:
  /// `l`, `e`, `r` name binary relations already populated in `db`;
  /// `source` is the query constant (already resolved to a Value).
  CslSolver(Database* db, std::string l, std::string e, std::string r,
            Value source);

  /// The counting method (Section 2, program Q_C). Returns Status::Unsafe
  /// when the counting-set fixpoint diverges (cyclic magic graph) and the
  /// iteration/tuple caps trip.
  Result<MethodRun> RunCounting(const RunOptions& options = {});

  /// The magic set method (Section 2, program Q_M). Always safe.
  Result<MethodRun> RunMagicSets(const RunOptions& options = {});

  /// A magic counting method (variant x mode).
  Result<MethodRun> RunMagicCounting(McVariant variant, McMode mode,
                                     const RunOptions& options = {});

  /// Reference answer: bottom-up evaluation of the original program Q
  /// (always terminates; used for correctness cross-checks).
  Result<MethodRun> RunReference(const RunOptions& options = {});

  /// All ten methods' names, for reporting loops.
  static std::vector<std::string> AllMethodNames();

  const rewrite::CslQuery& csl() const { return csl_; }
  Database* db() { return db_; }

 private:
  Result<MethodRun> RunProgramMethod(const std::string& name,
                                     const dl::Program& program,
                                     const RunOptions& options);
  void DropWorkingRelations();

  Database* db_;
  rewrite::CslQuery csl_;
  rewrite::RewriteNames names_;
  WorkNames work_names_;
};

}  // namespace mcm::core
