// Checkers for the correctness conditions of Theorems 1 and 2.
//
// Theorem 1 (independent methods): a reduced-set pair (RM, RC) yields a
// correct method iff
//   (a) RM ∪ RC₋ᵢ = MS, and
//   (b) for every b in RC₋ᵢ − RM,  RI_b = I_b.
// Theorem 2 (integrated methods) additionally requires
//   (c) (0, a) ∈ RC.
//
// These checkers compare the relations produced by a Step-1 computation
// against ground truth obtained from the magic-graph analysis, and are used
// both in tests (every Step-1 variant must satisfy them) and to demonstrate
// that *violating* partitions produce wrong answers.
#pragma once

#include <string>

#include "core/step1.h"
#include "storage/database.h"
#include "util/status.h"

namespace mcm::core {

/// Result of checking the Theorem 1/2 conditions.
struct TheoremCheck {
  bool condition_a = false;  ///< RM ∪ RC₋ᵢ = MS
  bool condition_b = false;  ///< RI_b = I_b on RC₋ᵢ − RM
  bool condition_c = false;  ///< (0, a) ∈ RC (integrated only)

  bool CorrectIndependent() const { return condition_a && condition_b; }
  bool CorrectIntegrated() const {
    return condition_a && condition_b && condition_c;
  }

  std::string failure;  ///< human-readable description of first violation
};

/// Check the conditions for the (RM, RC) relations named by `names` in `db`
/// against ground truth computed from the L relation `l_name` and source
/// `a`. Ground truth (true MS, true I_b) comes from the exact graph
/// analysis; recurring nodes must not appear in RC₋ᵢ − RM at all (their I_b
/// is infinite, so condition (b) can only hold for them via RM membership).
Result<TheoremCheck> CheckReducedSets(Database* db, const std::string& l_name,
                                      Value a, const WorkNames& names = {});

}  // namespace mcm::core
