// Query planner: evaluate an arbitrary program + query with the best
// applicable strategy.
//
// Strategy selection, in order:
//  1. If the query's recursive part is a canonical strongly linear (CSL)
//     query — allowing L, E, R to be *derived* predicates defined in lower,
//     non-recursive strata, the generalization Section 1 of the paper
//     mentions — the support strata are materialized first and the query is
//     answered with a magic counting method (by default: multiple /
//     integrated, the best safe all-rounder of the family).
//  2. Otherwise, if the query has at least one bound argument, the
//     generalized magic set rewriting is applied and the rewritten program
//     evaluated.
//  3. Otherwise the program is evaluated bottom-up as-is.
#pragma once

#include <string>
#include <vector>

#include "core/method.h"
#include "datalog/ast.h"
#include "storage/database.h"
#include "util/status.h"

namespace mcm::core {

/// Which strategy the planner ended up using.
enum class PlanKind : uint8_t {
  kMagicCounting,  ///< CSL path: Step1 + Step2 of the chosen MC method
  kMagicSets,      ///< generalized magic rewriting
  kBottomUp,       ///< plain seminaive evaluation
};

std::string PlanKindToString(PlanKind k);

struct PlannerOptions {
  /// MC method used on the CSL path.
  McVariant variant = McVariant::kMultiple;
  McMode mode = McMode::kIntegrated;
  RunOptions run;
  /// Disable the CSL fast path (for comparison runs).
  bool allow_magic_counting = true;
  /// Disable the magic-set rewriting fallback.
  bool allow_magic_sets = true;
};

/// \brief Result of planning + executing one query.
struct PlanReport {
  PlanKind kind = PlanKind::kBottomUp;
  std::string description;      ///< human-readable plan summary
  std::vector<Tuple> results;   ///< tuples matching the query goal
  AccessStats stats;            ///< total retrieval cost of the execution
  graph::GraphClass detected_class = graph::GraphClass::kRegular;
};

/// Plan and execute the single query of `program` against `db` (EDB
/// relations must be loaded; IDB relations are created).
Result<PlanReport> SolveProgram(Database* db, const dl::Program& program,
                                const PlannerOptions& options = {});

}  // namespace mcm::core
