// Query planner: evaluate an arbitrary program + query with the best
// applicable strategy.
//
// Strategy selection, in order:
//  0. The static analyzer (analysis::Analyze) runs once over the program:
//     validation errors abort planning, and its counting-safety verdict
//     table gates the strategies below.
//  1. If the query's recursive part is a canonical strongly linear (CSL)
//     query — allowing L, E, R to be *derived* predicates defined in lower,
//     non-recursive strata, the generalization Section 1 of the paper
//     mentions — the support strata are materialized first and the query is
//     answered with a magic counting method (by default: multiple /
//     integrated, the best safe all-rounder of the family). When the caller
//     opts into plain counting, it is selected only if the analyzer
//     statically proved the magic graph acyclic; a cyclic (or undecidable)
//     verdict makes the planner refuse counting and keep the safe method.
//  2. Otherwise, if the query has at least one bound argument, the
//     generalized magic set rewriting is applied and the rewritten program
//     evaluated.
//  3. Otherwise the program is evaluated bottom-up as-is.
//
// Runtime safety net: every execution is governed (deadline, cancellation,
// iteration/tuple/memory caps from RunOptions), and on the strongly linear
// path a dynamic abort triggers retry-with-degradation down the paper's
// Figure 3 hierarchy — counting, then the magic counting variants, then
// plain magic sets (always safe). Each try is recorded in
// PlanReport::attempts so callers can see what was tried, why it failed,
// and what finally answered the query.
#pragma once

#include <string>
#include <vector>

#include "analysis/analyzer.h"
#include "core/method.h"
#include "datalog/ast.h"
#include "storage/database.h"
#include "util/status.h"

namespace mcm::core {

/// Which strategy the planner ended up using.
enum class PlanKind : uint8_t {
  kCounting,       ///< pure counting (only when statically proven safe)
  kMagicCounting,  ///< CSL path: Step1 + Step2 of the chosen MC method
  kMagicSets,      ///< generalized magic rewriting
  kBottomUp,       ///< plain seminaive evaluation
};

std::string PlanKindToString(PlanKind k);

struct PlannerOptions {
  /// MC method used on the CSL path.
  McVariant variant = McVariant::kMultiple;
  McMode mode = McMode::kIntegrated;
  RunOptions run;
  /// Cost-ranked method selection: when the analyzer's cost pass computed a
  /// report, the degradation ladder follows its predicted-cost ranking
  /// (cheapest safe method first) instead of the fixed hierarchy walk, and
  /// plain counting is eligible whenever it is statically safe — the
  /// ranking subsumes the allow_plain_counting opt-in. Falls back to the
  /// fixed order when the cost parameters were not derivable.
  bool auto_select = false;
  /// Disable the CSL fast path (for comparison runs).
  bool allow_magic_counting = true;
  /// Disable the magic-set rewriting fallback.
  bool allow_magic_sets = true;
  /// Prefer pure counting on the CSL path when the analyzer statically
  /// proves the magic graph acyclic. On a cyclic (or undecidable) verdict
  /// the planner *refuses* counting and uses the configured MC method —
  /// the refusal is recorded in PlanReport::description.
  bool allow_plain_counting = false;
  /// With allow_plain_counting: attempt counting under the governor even
  /// when the static verdict is unsafe or undecidable, relying on the caps
  /// and the degradation ladder to recover. This is the dynamic complement
  /// to the static gate — safety becomes data-dependent, as the paper
  /// argues, instead of all-or-nothing.
  bool attempt_unsafe_counting = false;
  /// Skip every counting-based rung and answer with the always-safe
  /// magic-set rung directly (the ladder becomes a single "magic_sets"
  /// entry). Set by the query service's per-signature circuit breaker once
  /// a query shape has diverged repeatedly: there is no point paying for
  /// the doomed counting attempt again. Overrides allow_plain_counting /
  /// auto_select on the strongly linear path; the non-CSL paths (magic
  /// rewriting, bottom-up) are unaffected.
  bool force_safe_method = false;
  /// Retry-with-degradation: when a strongly-linear attempt aborts with
  /// kUnsafe or kDeadlineExceeded, re-run with the next-safer method in the
  /// Figure 3 hierarchy (counting -> single/multiple/recurring MC -> magic
  /// sets). Cancellation is never retried. When false, the first abort is
  /// returned to the caller as-is (plus the attempt log in the message).
  bool allow_fallback = true;
  /// Precomputed analysis of `program` against the same database. When
  /// null, SolveProgram runs the analyzer itself.
  const analysis::AnalysisResult* analysis = nullptr;
};

/// One entry of the planner's execution attempt log.
struct PlanAttempt {
  std::string method;  ///< "counting", "mc/multiple/integrated", ...
  Status status;       ///< OK for the attempt that answered the query
  runtime::AbortReason abort = runtime::AbortReason::kNone;
  double seconds = 0.0;
  /// Cost-model prediction for this method in tuple retrievals; negative
  /// when the cost pass had nothing (outside the CSL class, no EDB stats).
  double predicted_reads = -1.0;

  /// e.g. "counting: Unsafe [iteration_cap] (0.42ms)" or "magic_sets: ok".
  std::string ToString() const;
};

/// \brief Result of planning + executing one query.
struct PlanReport {
  PlanKind kind = PlanKind::kBottomUp;
  std::string description;      ///< human-readable plan summary
  std::vector<Tuple> results;   ///< tuples matching the query goal
  AccessStats stats;            ///< total retrieval cost of the execution
  graph::GraphClass detected_class = graph::GraphClass::kRegular;
  /// Analyzer output for the planned program: warnings/notes (errors abort
  /// planning before a report exists) and the static safety verdicts.
  std::vector<dl::Diagnostic> diagnostics;
  analysis::CountingSafetyReport safety;
  /// The cost pass's per-method table (Propositions 4-7); cost.computed is
  /// false outside the strongly linear class or without EDB statistics.
  analysis::CostReport cost;
  /// Predicted tuple retrievals for the method that answered the query
  /// (negative when no prediction existed); compare with
  /// stats.tuples_read, the measured count.
  double predicted_reads = -1.0;
  /// Everything the planner tried, in order; the last entry is the attempt
  /// that produced `results`. Size > 1 means the degradation ladder fired.
  std::vector<PlanAttempt> attempts;
};

/// Plan and execute the single query of `program` against `db` (EDB
/// relations must be loaded; IDB relations are created).
Result<PlanReport> SolveProgram(Database* db, const dl::Program& program,
                                const PlannerOptions& options = {});

/// Plan WITHOUT executing: run the analyzer (including the cost pass) and
/// report which method the planner would choose and in what ladder order,
/// with the cost table in PlanReport::cost. `results` stays empty and no
/// fixpoint runs — this is `mcmq --explain` / REPL `:explain`.
Result<PlanReport> ExplainProgram(const Database* db,
                                  const dl::Program& program,
                                  const PlannerOptions& options = {});

}  // namespace mcm::core
