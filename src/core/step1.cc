#include "core/step1.h"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>

#include "graph/classify.h"
#include "graph/query_graph.h"

namespace mcm::core {

namespace {

/// Per-node bookkeeping shared by the level-synchronous fixpoints.
struct NodeInfo {
  int64_t first_index = -1;
  bool flagged = false;           ///< non-single evidence seen
  std::vector<int64_t> indices;   ///< distinct recorded indices (sorted asc)
};

/// Prepare (clear or create) the three working relations.
struct WorkRels {
  Relation* ms;
  Relation* rm;
  Relation* rc;
};

WorkRels PrepareRelations(Database* db, const WorkNames& names) {
  WorkRels w;
  w.ms = db->GetOrCreateRelation(names.ms, 1);
  w.rm = db->GetOrCreateRelation(names.rm, 1);
  w.rc = db->GetOrCreateRelation(names.rc, 2);
  w.ms->Clear();
  w.rm->Clear();
  w.rc->Clear();
  return w;
}

/// The basic/single fixpoint (Section 6): BFS where each node expands only
/// once (at its first index); re-derivations merely record duplicate flags.
/// Always terminates in O(m_L) retrievals, cycles included.
Step1Result BasicSingleFixpoint(Database* db, const Relation& l, Value a,
                                bool single_variant, McMode mode,
                                const WorkNames& names,
                                DetectionMode detection) {
  std::unordered_map<Value, NodeInfo> info;
  std::vector<Value> frontier{a};
  info[a].first_index = 0;
  int64_t level = 0;
  uint64_t levels = 0;

  bool any_flagged = false;
  while (!frontier.empty()) {
    ++levels;
    std::vector<Value> next;
    for (Value x : frontier) {
      for (uint32_t id : l.Probe({0}, {x})) {
        Value x1 = l.PeekUnchecked(id)[1];
        auto [it, fresh] = info.emplace(x1, NodeInfo{});
        NodeInfo& ni = it->second;
        if (fresh) {
          ni.first_index = level + 1;
          next.push_back(x1);
        } else {
          bool differs = ni.first_index != level + 1;
          if (detection == DetectionMode::kAnyDuplicate || differs) {
            if (!ni.flagged) {
              ni.flagged = true;
              any_flagged = true;
            }
          }
        }
      }
    }
    frontier = std::move(next);
    ++level;
  }

  WorkRels w = PrepareRelations(db, names);
  Step1Result out;
  out.levels = levels;

  for (const auto& [v, ni] : info) w.ms->Insert(Tuple{v});
  out.ms_size = w.ms->size();

  if (!any_flagged) {
    // Regular graph: pure counting.
    for (const auto& [v, ni] : info) {
      w.rc->Insert(Tuple{ni.first_index, v});
    }
    out.detected = graph::GraphClass::kRegular;
  } else if (!single_variant) {
    // Basic method: all-magic.
    for (const auto& [v, ni] : info) w.rm->Insert(Tuple{v});
    out.detected = graph::GraphClass::kAcyclicNonRegular;
  } else {
    // Single method: counting below i_x, magic at or above.
    int64_t i_x = INT64_MAX;
    for (const auto& [v, ni] : info) {
      if (ni.flagged) i_x = std::min(i_x, ni.first_index);
    }
    for (const auto& [v, ni] : info) {
      if (ni.first_index < i_x) {
        w.rc->Insert(Tuple{ni.first_index, v});
      } else {
        w.rm->Insert(Tuple{v});
      }
    }
    out.detected = graph::GraphClass::kAcyclicNonRegular;
  }

  if (mode == McMode::kIntegrated && w.rc->empty()) {
    w.rc->Insert(Tuple{0, a});
  }
  out.rm_size = w.rm->size();
  out.rc_size = w.rc->size();
  return out;
}

/// The multiple fixpoint (Section 8): nodes expand at up to two distinct
/// indices; once a node holds two it stops absorbing more. Terminates in
/// O(m_L) retrievals, cycles included.
Step1Result MultipleFixpoint(Database* db, const Relation& l, Value a,
                             McMode mode, const WorkNames& names,
                             DetectionMode detection) {
  std::unordered_map<Value, NodeInfo> info;
  // Frontier holds nodes that acquired a new index == level.
  std::vector<Value> frontier{a};
  info[a].first_index = 0;
  info[a].indices = {0};
  int64_t level = 0;
  uint64_t levels = 0;

  while (!frontier.empty()) {
    ++levels;
    std::vector<Value> next;
    for (Value x : frontier) {
      for (uint32_t id : l.Probe({0}, {x})) {
        Value x1 = l.PeekUnchecked(id)[1];
        auto [it, fresh] = info.emplace(x1, NodeInfo{});
        NodeInfo& ni = it->second;
        int64_t idx = level + 1;
        if (fresh) {
          ni.first_index = idx;
          ni.indices = {idx};
          next.push_back(x1);
          continue;
        }
        // Node already has two distinct indices: suppressed.
        if (ni.indices.size() >= 2) continue;
        bool have = std::find(ni.indices.begin(), ni.indices.end(), idx) !=
                    ni.indices.end();
        if (have) {
          // Duplicate derivation at an index we already hold.
          if (detection == DetectionMode::kAnyDuplicate) ni.flagged = true;
          continue;
        }
        ni.indices.push_back(idx);
        ni.flagged = true;
        next.push_back(x1);
      }
    }
    frontier = std::move(next);
    ++level;
  }

  WorkRels w = PrepareRelations(db, names);
  Step1Result out;
  out.levels = levels;

  bool any_flagged = false;
  for (const auto& [v, ni] : info) {
    w.ms->Insert(Tuple{v});
    if (ni.flagged) any_flagged = true;
  }
  for (const auto& [v, ni] : info) {
    if (ni.flagged) {
      w.rm->Insert(Tuple{v});
    } else {
      w.rc->Insert(Tuple{ni.first_index, v});
    }
  }
  out.detected = any_flagged ? graph::GraphClass::kAcyclicNonRegular
                             : graph::GraphClass::kRegular;
  if (mode == McMode::kIntegrated && w.rc->empty()) {
    w.rc->Insert(Tuple{0, a});
  }
  out.ms_size = w.ms->size();
  out.rm_size = w.rm->size();
  out.rc_size = w.rc->size();
  return out;
}

/// The recurring fixpoint (Section 9): full counting-set enumeration with
/// the pigeonhole cap I < 2K-1; nodes that record an index >= K (final) are
/// exactly the recurring ones. O(n_L * m_L) retrievals.
Step1Result RecurringFixpoint(Database* db, const Relation& l, Value a,
                              McMode mode, const WorkNames& names) {
  std::unordered_map<Value, std::vector<int64_t>> indices;  // sorted asc
  std::vector<Value> frontier{a};
  indices[a] = {0};
  int64_t level = 0;
  uint64_t levels = 0;
  int64_t k = 1;  // nodes seen so far

  while (!frontier.empty() && level < 2 * k - 1) {
    ++levels;
    std::vector<Value> next;
    for (Value x : frontier) {
      for (uint32_t id : l.Probe({0}, {x})) {
        Value x1 = l.PeekUnchecked(id)[1];
        auto [it, fresh] = indices.emplace(x1, std::vector<int64_t>{});
        if (fresh) ++k;
        std::vector<int64_t>& set = it->second;
        int64_t idx = level + 1;
        if (std::find(set.begin(), set.end(), idx) == set.end()) {
          set.push_back(idx);
          next.push_back(x1);
        }
      }
    }
    frontier = std::move(next);
    ++level;
  }

  WorkRels w = PrepareRelations(db, names);
  Step1Result out;
  out.levels = levels;

  bool any_recurring = false;
  bool any_multiple = false;
  for (const auto& [v, set] : indices) {
    w.ms->Insert(Tuple{v});
    bool recurring = std::any_of(set.begin(), set.end(),
                                 [&](int64_t i) { return i >= k; });
    if (recurring) {
      any_recurring = true;
      w.rm->Insert(Tuple{v});
    } else {
      if (set.size() > 1) any_multiple = true;
      for (int64_t i : set) w.rc->Insert(Tuple{i, v});
    }
  }
  out.detected = any_recurring    ? graph::GraphClass::kCyclic
                 : any_multiple   ? graph::GraphClass::kAcyclicNonRegular
                                  : graph::GraphClass::kRegular;
  if (mode == McMode::kIntegrated && w.rc->empty()) {
    w.rc->Insert(Tuple{0, a});
  }
  out.ms_size = w.ms->size();
  out.rm_size = w.rm->size();
  out.rc_size = w.rc->size();
  return out;
}

/// The "smart" Step 1 (end of Section 9): build the magic graph once, find
/// recurring nodes with Tarjan in linear time, and run the distance-set DP
/// only on the non-recurring DAG.
Result<Step1Result> SmartRecurringStep1(Database* db, const Relation& l,
                                        Value a, McMode mode,
                                        const WorkNames& names) {
  // The magic graph needs no E/R part; reuse QueryGraph with empty E/R.
  Relation empty_e("__empty_e", 2, nullptr);
  Relation empty_r("__empty_r", 2, nullptr);
  MCM_ASSIGN_OR_RETURN(graph::QueryGraph qg,
                       graph::QueryGraph::Build(l, empty_e, empty_r, a));
  // Charge the traversal: building G_L touches each L arc once. The
  // QueryGraph reader is uninstrumented, so account for it explicitly.
  db->stats().tuples_read += qg.m_l();

  graph::MagicGraphAnalysis analysis =
      graph::AnalyzeMagicGraph(qg.magic_graph(), qg.source());

  WorkRels w = PrepareRelations(db, names);
  Step1Result out;
  out.levels = 1;
  out.detected = analysis.graph_class;

  for (graph::NodeId v = 0; v < qg.magic_graph().NumNodes(); ++v) {
    Value value = qg.LValueOf(v);
    w.ms->Insert(Tuple{value});
    if (analysis.node_class[v] == graph::NodeClass::kRecurring) {
      w.rm->Insert(Tuple{value});
    } else {
      for (int64_t i : analysis.distance_sets[v]) {
        w.rc->Insert(Tuple{i, value});
      }
    }
  }
  if (mode == McMode::kIntegrated && w.rc->empty()) {
    w.rc->Insert(Tuple{0, a});
  }
  out.ms_size = w.ms->size();
  out.rm_size = w.rm->size();
  out.rc_size = w.rc->size();
  return out;
}

}  // namespace

Result<Step1Result> ComputeReducedSets(Database* db, const std::string& l_name,
                                       Value a, McVariant variant, McMode mode,
                                       const WorkNames& names,
                                       DetectionMode detection) {
  Relation* l = db->Find(l_name);
  if (l == nullptr) {
    return Status::NotFound("L relation '" + l_name + "' not found");
  }
  if (l->arity() != 2) {
    return Status::InvalidArgument("L relation must be binary");
  }
  switch (variant) {
    case McVariant::kBasic:
      return BasicSingleFixpoint(db, *l, a, /*single_variant=*/false, mode,
                                 names, detection);
    case McVariant::kSingle:
      return BasicSingleFixpoint(db, *l, a, /*single_variant=*/true, mode,
                                 names, detection);
    case McVariant::kMultiple:
      return MultipleFixpoint(db, *l, a, mode, names, detection);
    case McVariant::kRecurring:
      return RecurringFixpoint(db, *l, a, mode, names);
    case McVariant::kRecurringSmart:
      return SmartRecurringStep1(db, *l, a, mode, names);
  }
  return Status::Internal("unknown Step-1 variant");
}

}  // namespace mcm::core
