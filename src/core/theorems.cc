#include "core/theorems.h"

#include <algorithm>
#include <set>
#include <unordered_map>
#include <unordered_set>

#include "graph/classify.h"
#include "graph/query_graph.h"

namespace mcm::core {

Result<TheoremCheck> CheckReducedSets(Database* db, const std::string& l_name,
                                      Value a, const WorkNames& names) {
  Relation* l = db->Find(l_name);
  if (l == nullptr) {
    return Status::NotFound("L relation '" + l_name + "' not found");
  }
  Relation* rm = db->Find(names.rm);
  Relation* rc = db->Find(names.rc);
  if (rm == nullptr || rc == nullptr) {
    return Status::NotFound("RM/RC relations not found — run Step 1 first");
  }

  // Ground truth from the exact analysis.
  Relation empty_e("__empty_e", 2, nullptr);
  Relation empty_r("__empty_r", 2, nullptr);
  MCM_ASSIGN_OR_RETURN(graph::QueryGraph qg,
                       graph::QueryGraph::Build(*l, empty_e, empty_r, a));
  graph::MagicGraphAnalysis analysis =
      graph::AnalyzeMagicGraph(qg.magic_graph(), qg.source());

  std::unordered_set<Value> true_ms(qg.l_values().begin(),
                                    qg.l_values().end());

  std::unordered_set<Value> rm_set;
  for (const Tuple& t : rm->TuplesUnchecked()) rm_set.insert(t[0]);
  std::unordered_map<Value, std::set<int64_t>> rc_map;
  for (const Tuple& t : rc->TuplesUnchecked()) rc_map[t[1]].insert(t[0]);

  TheoremCheck check;

  // (a) RM ∪ RC₋ᵢ = MS.
  check.condition_a = true;
  for (Value v : true_ms) {
    if (rm_set.count(v) == 0 && rc_map.count(v) == 0) {
      check.condition_a = false;
      check.failure = "condition (a): magic value " + std::to_string(v) +
                      " missing from RM ∪ RC";
      break;
    }
  }
  if (check.condition_a) {
    for (Value v : rm_set) {
      if (true_ms.count(v) == 0) {
        check.condition_a = false;
        check.failure =
            "condition (a): RM contains non-magic value " + std::to_string(v);
        break;
      }
    }
    for (const auto& [v, idx] : rc_map) {
      (void)idx;
      if (true_ms.count(v) == 0) {
        check.condition_a = false;
        check.failure =
            "condition (a): RC contains non-magic value " + std::to_string(v);
        break;
      }
    }
  }

  // (b) RI_b = I_b for b in RC₋ᵢ − RM.
  check.condition_b = true;
  for (const auto& [v, ri] : rc_map) {
    if (rm_set.count(v) > 0) continue;  // covered by the magic side
    graph::NodeId node = qg.LNodeOf(v);
    if (node == graph::kInvalidNode) continue;  // flagged by (a) already
    if (analysis.node_class[node] == graph::NodeClass::kRecurring) {
      check.condition_b = false;
      check.failure = "condition (b): recurring node " + std::to_string(v) +
                      " in RC − RM (I_b is infinite)";
      break;
    }
    const std::vector<int64_t>& truth = analysis.distance_sets[node];
    std::set<int64_t> truth_set(truth.begin(), truth.end());
    if (truth_set != ri) {
      check.condition_b = false;
      check.failure = "condition (b): node " + std::to_string(v) +
                      " has RI_b != I_b (|RI|=" + std::to_string(ri.size()) +
                      ", |I|=" + std::to_string(truth_set.size()) + ")";
      break;
    }
  }

  // (c) (0, a) in RC.
  auto it = rc_map.find(a);
  check.condition_c = it != rc_map.end() && it->second.count(0) > 0;

  return check;
}

}  // namespace mcm::core
