#include "core/direct.h"

#include <algorithm>
#include <deque>
#include <unordered_map>
#include <unordered_set>

#include "util/fault_injection.h"
#include "util/timer.h"

namespace mcm::core {

namespace {

struct PairHash {
  size_t operator()(const std::pair<int64_t, int64_t>& p) const {
    return static_cast<size_t>(
        HashCombine(HashMix64(static_cast<uint64_t>(p.first)),
                    static_cast<uint64_t>(p.second)));
  }
};

using PairSet = std::unordered_set<std::pair<int64_t, int64_t>, PairHash>;

/// Indexed P_C set: pairs (J, Y) with a worklist-driven descent
///   P_C(J-1, Y) :- P_C(J, Y1), R(Y, Y1), J > 0.
class CountingSide {
 public:
  explicit CountingSide(const Relation* r) : r_(r) {}

  void Add(int64_t j, Value y) {
    if (pc_.emplace(j, y).second) worklist_.emplace_back(j, y);
  }

  void Descend() {
    while (!worklist_.empty()) {
      auto [j, y1] = worklist_.back();
      worklist_.pop_back();
      if (j <= 0) continue;
      for (uint32_t id : std::vector<uint32_t>(r_->Probe({1}, {y1}))) {
        Add(j - 1, r_->PeekUnchecked(id)[0]);
      }
    }
  }

  std::vector<Value> AnswersAtZero() const {
    std::vector<Value> out;
    for (const auto& [j, y] : pc_) {
      if (j == 0) out.push_back(y);
    }
    std::sort(out.begin(), out.end());
    out.erase(std::unique(out.begin(), out.end()), out.end());
    return out;
  }

 private:
  const Relation* r_;
  PairSet pc_;
  std::vector<std::pair<int64_t, Value>> worklist_;
};

/// Indexed P_M set: pairs (X, Y) with the bottom-up propagation
///   P_M(X, Y) :- parents(X) of X1 restricted to `parent_filter`,
///                P_M(X1, Y1), R(Y, Y1).
class MagicSide {
 public:
  MagicSide(const Relation* l, const Relation* r,
            const std::unordered_set<Value>* parent_filter)
      : l_(l), r_(r), parent_filter_(parent_filter) {}

  void Add(Value x, Value y) {
    if (pm_.emplace(x, y).second) {
      by_x_[x].push_back(y);
      worklist_.emplace_back(x, y);
    }
  }

  void Propagate() {
    while (!worklist_.empty()) {
      auto [x1, y1] = worklist_.back();
      worklist_.pop_back();
      // Parents of x1 through L (probe on the second column).
      for (uint32_t id : std::vector<uint32_t>(l_->Probe({1}, {x1}))) {
        Value x = l_->PeekUnchecked(id)[0];
        if (parent_filter_->count(x) == 0) continue;
        for (uint32_t rid : std::vector<uint32_t>(r_->Probe({1}, {y1}))) {
          Add(x, r_->PeekUnchecked(rid)[0]);
        }
      }
    }
  }

  const std::vector<Value>* ResultsFor(Value x) const {
    auto it = by_x_.find(x);
    return it == by_x_.end() ? nullptr : &it->second;
  }

 private:
  const Relation* l_;
  const Relation* r_;
  const std::unordered_set<Value>* parent_filter_;
  PairSet pm_;
  std::unordered_map<Value, std::vector<Value>> by_x_;
  std::vector<std::pair<Value, Value>> worklist_;
};

struct Relations {
  Relation* l;
  Relation* e;
  Relation* r;
};

Result<Relations> LookupRelations(Database* db, const std::string& l,
                                  const std::string& e,
                                  const std::string& r) {
  Relations rel;
  MCM_ASSIGN_OR_RETURN(rel.l, db->Get(l));
  MCM_ASSIGN_OR_RETURN(rel.e, db->Get(e));
  MCM_ASSIGN_OR_RETURN(rel.r, db->Get(r));
  if (rel.l->arity() != 2 || rel.e->arity() != 2 || rel.r->arity() != 2) {
    return Status::InvalidArgument("L, E, R must be binary");
  }
  return rel;
}

void FillStats(Database* db, const AccessStats& before, Timer* timer,
               MethodRun* run) {
  AccessStats after = db->stats();
  run->total.tuples_read = after.tuples_read - before.tuples_read;
  run->step2.tuples_read =
      run->total.tuples_read - run->step1.tuples_read;
  run->seconds = timer->ElapsedSeconds();
}

}  // namespace

Result<MethodRun> DirectCounting(Database* db, const std::string& l,
                                 const std::string& e, const std::string& r,
                                 Value a, const RunOptions& options) {
  MCM_ASSIGN_OR_RETURN(Relations rel, LookupRelations(db, l, e, r));
  AccessStats before = db->stats();
  Timer timer;
  MethodRun run;
  run.method = "direct/counting";

  // Same default-cap policy as the engine path (RunOptions::EffectiveCaps).
  ResolvedCaps caps = options.EffectiveCaps(rel.l->size(), rel.r->size());
  runtime::ExecutionContext local_ctx;
  const runtime::ExecutionContext* ctx = options.context;
  if (ctx == nullptr && options.timeout_ms > 0) {
    local_ctx = runtime::ExecutionContext::WithTimeout(options.timeout_ms);
    ctx = &local_ctx;
  }

  if (ctx != nullptr) {
    MCM_RETURN_NOT_OK(ctx->CheckStatus("direct counting (startup)"));
  }

  // Counting-set BFS over (index, node) pairs — may diverge on cycles.
  PairSet cs;
  std::deque<std::pair<int64_t, Value>> frontier;
  cs.emplace(0, a);
  frontier.emplace_back(0, a);
  CountingSide pc(rel.r);
  uint64_t pops = 0;
  while (!frontier.empty()) {
    auto [j, x] = frontier.front();
    frontier.pop_front();
    MCM_FAULT_POINT("direct/round");
    // Governor poll, amortized: the deadline/cancellation clock check is
    // hoisted off every pop.
    if (ctx != nullptr && (++pops & 63) == 0) {
      MCM_RETURN_NOT_OK(ctx->CheckStatus("direct counting (level " +
                                         std::to_string(j) + ")"));
    }
    if (static_cast<uint64_t>(j) > caps.max_iterations) {
      return Status::Unsafe(
          "counting-set fixpoint exceeded level cap (iteration cap " +
          std::to_string(caps.max_iterations) +
          ") — divergent on cyclic magic graph");
    }
    if (caps.max_tuples != 0 && cs.size() > caps.max_tuples) {
      return Status::Unsafe(
          "counting-set fixpoint exceeded tuple cap (" +
          std::to_string(caps.max_tuples) + ")");
    }
    if (options.max_memory_bytes != 0 &&
        cs.size() * (sizeof(std::pair<int64_t, Value>) + 32) >
            options.max_memory_bytes) {
      return Status::Unsafe(
          "counting-set fixpoint exceeded memory budget (" +
          std::to_string(options.max_memory_bytes) + " bytes)");
    }
    // Exit rule: P_C(J, Y) :- CS(J, X), E(X, Y).
    for (uint32_t id : std::vector<uint32_t>(rel.e->Probe({0}, {x}))) {
      pc.Add(j, rel.e->PeekUnchecked(id)[1]);
    }
    // CS(J+1, X1) :- CS(J, X), L(X, X1).
    for (uint32_t id : std::vector<uint32_t>(rel.l->Probe({0}, {x}))) {
      Value x1 = rel.l->PeekUnchecked(id)[1];
      if (cs.emplace(j + 1, x1).second) frontier.emplace_back(j + 1, x1);
    }
  }
  pc.Descend();
  run.answers = pc.AnswersAtZero();
  run.step2_iterations = cs.size();
  FillStats(db, before, &timer, &run);
  return run;
}

Result<MethodRun> DirectMagicSets(Database* db, const std::string& l,
                                  const std::string& e, const std::string& r,
                                  Value a, const RunOptions& options) {
  (void)options;
  MCM_ASSIGN_OR_RETURN(Relations rel, LookupRelations(db, l, e, r));
  AccessStats before = db->stats();
  Timer timer;
  MethodRun run;
  run.method = "direct/magic_sets";

  // Magic set: plain BFS over nodes.
  std::unordered_set<Value> ms{a};
  std::deque<Value> frontier{a};
  while (!frontier.empty()) {
    Value x = frontier.front();
    frontier.pop_front();
    for (uint32_t id : std::vector<uint32_t>(rel.l->Probe({0}, {x}))) {
      Value x1 = rel.l->PeekUnchecked(id)[1];
      if (ms.insert(x1).second) frontier.push_back(x1);
    }
  }
  run.ms_size = ms.size();

  MagicSide pm(rel.l, rel.r, &ms);
  // Exit rule: P_M(X, Y) :- MS(X), E(X, Y).
  for (Value x : ms) {
    for (uint32_t id : std::vector<uint32_t>(rel.e->Probe({0}, {x}))) {
      pm.Add(x, rel.e->PeekUnchecked(id)[1]);
    }
  }
  pm.Propagate();

  if (const std::vector<Value>* res = pm.ResultsFor(a)) {
    run.answers = *res;
    std::sort(run.answers.begin(), run.answers.end());
    run.answers.erase(std::unique(run.answers.begin(), run.answers.end()),
                      run.answers.end());
  }
  FillStats(db, before, &timer, &run);
  return run;
}

Result<MethodRun> DirectMagicCounting(Database* db, const std::string& l,
                                      const std::string& e,
                                      const std::string& r, Value a,
                                      McVariant variant, McMode mode,
                                      const RunOptions& options) {
  MCM_ASSIGN_OR_RETURN(Relations rel, LookupRelations(db, l, e, r));
  AccessStats before = db->stats();
  Timer timer;
  MethodRun run;
  run.method = "direct/mc/" + McVariantToString(variant) + "/" +
               McModeToString(mode);

  // --- Step 1 (shared with the engine path; already direct). ---
  WorkNames names;
  MCM_ASSIGN_OR_RETURN(
      Step1Result s1,
      ComputeReducedSets(db, l, a, variant, mode, names, options.detection));
  run.ms_size = s1.ms_size;
  run.rm_size = s1.rm_size;
  run.rc_size = s1.rc_size;
  run.detected_class = s1.detected;
  run.step1.tuples_read = db->stats().tuples_read - before.tuples_read;

  // Read the reduced sets (instrumented scans: Step 2 retrieves them like
  // any database relation).
  std::unordered_set<Value> rm_set;
  for (const Tuple& t : db->Find(names.rm)->Scan()) rm_set.insert(t[0]);
  std::vector<std::pair<int64_t, Value>> rc;
  for (const Tuple& t : db->Find(names.rc)->Scan()) {
    rc.emplace_back(t[0], t[1]);
  }
  std::unordered_set<Value> ms_set;
  for (const Tuple& t : db->Find(names.ms)->Scan()) ms_set.insert(t[0]);

  CountingSide pc(rel.r);

  if (mode == McMode::kIndependent) {
    // P_C(J, Y) :- RC(J, X), E(X, Y).
    for (auto [j, x] : rc) {
      for (uint32_t id : std::vector<uint32_t>(rel.e->Probe({0}, {x}))) {
        pc.Add(j, rel.e->PeekUnchecked(id)[1]);
      }
    }
    pc.Descend();
    // Magic side over RM exits, recursing through all of MS.
    MagicSide pm(rel.l, rel.r, &ms_set);
    for (Value x : rm_set) {
      for (uint32_t id : std::vector<uint32_t>(rel.e->Probe({0}, {x}))) {
        pm.Add(x, rel.e->PeekUnchecked(id)[1]);
      }
    }
    pm.Propagate();

    run.answers = pc.AnswersAtZero();
    if (const std::vector<Value>* res = pm.ResultsFor(a)) {
      run.answers.insert(run.answers.end(), res->begin(), res->end());
    }
  } else {
    // Integrated: the magic side recurses only inside RM ...
    MagicSide pm(rel.l, rel.r, &rm_set);
    for (Value x : rm_set) {
      for (uint32_t id : std::vector<uint32_t>(rel.e->Probe({0}, {x}))) {
        pm.Add(x, rel.e->PeekUnchecked(id)[1]);
      }
    }
    pm.Propagate();
    // ... and its results transfer into the counting side:
    // P_C(J, Y) :- RC(J, X), L(X, X1), P_M(X1, Y1), R(Y, Y1).
    for (auto [j, x] : rc) {
      for (uint32_t id : std::vector<uint32_t>(rel.l->Probe({0}, {x}))) {
        Value x1 = rel.l->PeekUnchecked(id)[1];
        const std::vector<Value>* results = pm.ResultsFor(x1);
        if (results == nullptr) continue;
        for (Value y1 : *results) {
          for (uint32_t rid : std::vector<uint32_t>(rel.r->Probe({1}, {y1}))) {
            pc.Add(j, rel.r->PeekUnchecked(rid)[0]);
          }
        }
      }
    }
    // P_C(J, Y) :- RC(J, X), E(X, Y).
    for (auto [j, x] : rc) {
      for (uint32_t id : std::vector<uint32_t>(rel.e->Probe({0}, {x}))) {
        pc.Add(j, rel.e->PeekUnchecked(id)[1]);
      }
    }
    pc.Descend();
    run.answers = pc.AnswersAtZero();
  }

  std::sort(run.answers.begin(), run.answers.end());
  run.answers.erase(std::unique(run.answers.begin(), run.answers.end()),
                    run.answers.end());
  FillStats(db, before, &timer, &run);
  return run;
}

}  // namespace mcm::core
