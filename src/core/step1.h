// Step 1 of the magic counting methods: computing the reduced sets RM, RC.
//
// Four fixpoint computations (Sections 6-9 of the paper) plus the
// Tarjan-based refinement. Each reads the L relation through instrumented
// index probes (so its cost is measured in the paper's unit) and populates
// three relations in the database:
//   MS(X)     — the full magic set (needed by independent Step 2),
//   RM(X)     — the restricted magic set,
//   RC(J, X)  — the restricted counting set with its indices.
//
// Correctness of the classifications (kDifferingIndex mode):
//
// * basic/single fixpoint (one expansion per node, BFS order): a node is
//   flagged non-single iff it is re-derived at an index different from its
//   first. If the magic graph is non-regular, take a non-single node whose
//   smallest index j is minimal; walking its longer derivation backwards,
//   each step either reveals an expansion at a different index (flagging the
//   node) or a parent whose own first index differs from j-1 (flagging it),
//   and the walk terminates at the source whose index set is {0} — so some
//   node with first index <= j is flagged. Hence i_x (the minimum first
//   index among flagged nodes) satisfies: every node with first index < i_x
//   is single, which is exactly condition (b) of Theorem 1/2 for the single
//   method's RC.
//
// * multiple fixpoint (expansion at up to two distinct indices per node): by
//   induction along BFS levels, each node records min(I_b) and, when it
//   exists, the second-smallest element of I_b — both of which are sums of
//   recorded parent indices plus one. A node therefore keeps exactly one
//   index iff it is single, so RC = single nodes with exact RI_b = I_b.
//
// * recurring fixpoint (levels capped at 2K-1): paths to non-recurring nodes
//   are simple, so all their distances are < K and are enumerated exactly;
//   a recurring node, having distances l + t*c with l < K and cycle length
//   c <= K, always records some index in [K, 2K-1] — so RM = recurring
//   nodes, exactly, and RC carries the full (finite) index sets of the
//   single and multiple nodes.
#pragma once

#include "core/method.h"
#include "storage/database.h"
#include "util/status.h"

namespace mcm::core {

/// Working-relation names shared by Step 1 and Step 2.
struct WorkNames {
  std::string ms = "mcm_ms";
  std::string rm = "mcm_rm";
  std::string rc = "mcm_rc";
};

/// \brief Output summary of a Step-1 computation.
struct Step1Result {
  size_t ms_size = 0;
  size_t rm_size = 0;
  size_t rc_size = 0;
  /// Graph class as this Step-1 variant could detect it. Basic/single/
  /// multiple variants cannot distinguish cyclic from acyclic non-regular
  /// graphs; they report kAcyclicNonRegular for both.
  graph::GraphClass detected = graph::GraphClass::kRegular;
  /// Fixpoint levels processed.
  uint64_t levels = 0;
};

/// Run the Step-1 computation of `variant` for the query with L-relation
/// `l_name` and source value `a`, writing MS/RM/RC into `db` (pre-existing
/// contents of those relations are cleared). For integrated methods an
/// empty RC is topped up with (0, a) as Theorem 2 requires; pass
/// `integrated` accordingly.
Result<Step1Result> ComputeReducedSets(Database* db, const std::string& l_name,
                                       Value a, McVariant variant, McMode mode,
                                       const WorkNames& names = {},
                                       DetectionMode detection =
                                           DetectionMode::kDifferingIndex);

}  // namespace mcm::core
