#include "core/solver.h"

#include <algorithm>

#include "eval/engine.h"
#include "util/fault_injection.h"
#include "util/timer.h"

namespace mcm::core {

CslSolver::CslSolver(Database* db, std::string l, std::string e, std::string r,
                     Value source)
    : db_(db) {
  csl_.p = "mcm_p";
  csl_.l = std::move(l);
  csl_.e = std::move(e);
  csl_.r = std::move(r);
  csl_.source = dl::Term::Int(source);  // already a resolved Value
  csl_.answer_var = "Y";
  work_names_.ms = names_.ms;
  work_names_.rm = names_.rm;
  work_names_.rc = names_.rc;
}

void CslSolver::DropWorkingRelations() {
  for (const std::string& name :
       {names_.cs, names_.ms, names_.pc, names_.pm, names_.rm, names_.rc,
        names_.answer, csl_.p}) {
    db_->Drop(name);
  }
}

namespace {

/// L and R arc counts of the instance, feeding RunOptions::EffectiveCaps.
std::pair<uint64_t, uint64_t> ArcCounts(const Database& db,
                                        const rewrite::CslQuery& csl) {
  const Relation* l = db.Find(csl.l);
  const Relation* r = db.Find(csl.r);
  return {l != nullptr ? l->size() : 0, r != nullptr ? r->size() : 0};
}

/// Resolve the engine options for one governed run: caps from the unified
/// default-cap policy, memory budget, and the execution context (an
/// explicit one wins; otherwise a fresh deadline from timeout_ms is stored
/// in `local_ctx`, which the caller must keep alive for the run).
eval::EvalOptions GovernedEvalOptions(const Database& db,
                                      const rewrite::CslQuery& csl,
                                      const RunOptions& options,
                                      runtime::ExecutionContext* local_ctx) {
  auto [l_arcs, r_arcs] = ArcCounts(db, csl);
  ResolvedCaps caps = options.EffectiveCaps(l_arcs, r_arcs);
  eval::EvalOptions eopts;
  eopts.max_iterations = caps.max_iterations;
  eopts.max_tuples = caps.max_tuples;
  eopts.max_memory_bytes = options.max_memory_bytes;
  eopts.assume_validated = options.assume_validated;
  if (options.context != nullptr) {
    eopts.context = options.context;
  } else if (options.timeout_ms > 0) {
    *local_ctx = runtime::ExecutionContext::WithTimeout(options.timeout_ms);
    eopts.context = local_ctx;
  }
  return eopts;
}

std::vector<Value> ExtractAnswers(const std::vector<Tuple>& tuples,
                                  uint32_t col) {
  std::vector<Value> out;
  out.reserve(tuples.size());
  for (const Tuple& t : tuples) out.push_back(t[col]);
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

}  // namespace

Result<MethodRun> CslSolver::RunProgramMethod(const std::string& name,
                                              const dl::Program& program,
                                              const RunOptions& options) {
  MCM_FAULT_POINT("solver/run");
  MethodRun run;
  run.method = name;

  runtime::ExecutionContext local_ctx;
  eval::EvalOptions eopts =
      GovernedEvalOptions(*db_, csl_, options, &local_ctx);

  AccessStats before = db_->stats();
  Timer timer;
  eval::Engine engine(db_, eopts);
  Status st = engine.Run(program);
  run.seconds = timer.ElapsedSeconds();
  AccessStats after = db_->stats();
  run.step2.tuples_read = after.tuples_read - before.tuples_read;
  run.step2.tuples_inserted = after.tuples_inserted - before.tuples_inserted;
  run.step2.insert_attempts = after.insert_attempts - before.insert_attempts;
  run.step2.scans = after.scans - before.scans;
  run.step2.probes = after.probes - before.probes;
  run.total = run.step2;
  run.step2_iterations = engine.info().iterations;
  if (!st.ok()) return st;

  MCM_ASSIGN_OR_RETURN(std::vector<Tuple> tuples,
                       engine.Query(program.queries[0].goal));
  uint32_t col =
      program.queries[0].goal.arity() == 1 ? 0 : 1;  // Answer(Y) or P(a, Y)
  run.answers = ExtractAnswers(tuples, col);
  return run;
}

Result<MethodRun> CslSolver::RunCounting(const RunOptions& options) {
  DropWorkingRelations();
  return RunProgramMethod("counting", rewrite::CountingProgram(csl_, names_),
                          options);
}

Result<MethodRun> CslSolver::RunMagicSets(const RunOptions& options) {
  DropWorkingRelations();
  return RunProgramMethod("magic_sets", rewrite::MagicSetProgram(csl_, names_),
                          options);
}

Result<MethodRun> CslSolver::RunReference(const RunOptions& options) {
  DropWorkingRelations();
  return RunProgramMethod("reference", rewrite::OriginalProgram(csl_),
                          options);
}

Result<MethodRun> CslSolver::RunMagicCounting(McVariant variant, McMode mode,
                                              const RunOptions& options) {
  MCM_FAULT_POINT("solver/run");
  DropWorkingRelations();

  Value a = csl_.source.value;

  // --- Step 1: reduced sets. ---
  AccessStats before = db_->stats();
  Timer timer;
  MCM_ASSIGN_OR_RETURN(
      Step1Result s1,
      ComputeReducedSets(db_, csl_.l, a, variant, mode, work_names_,
                         options.detection));
  AccessStats mid = db_->stats();

  // --- Step 2: modified rules. ---
  dl::Program program = mode == McMode::kIndependent
                            ? rewrite::IndependentMcProgram(csl_, names_)
                            : rewrite::IntegratedMcProgram(csl_, names_);

  runtime::ExecutionContext local_ctx;
  eval::EvalOptions eopts =
      GovernedEvalOptions(*db_, csl_, options, &local_ctx);
  eval::Engine engine(db_, eopts);
  Status st = engine.Run(program);
  double seconds = timer.ElapsedSeconds();
  AccessStats after = db_->stats();

  MethodRun run;
  run.method = "mc/" + McVariantToString(variant) + "/" + McModeToString(mode);
  run.seconds = seconds;
  run.step1.tuples_read = mid.tuples_read - before.tuples_read;
  run.step1.tuples_inserted = mid.tuples_inserted - before.tuples_inserted;
  run.step2.tuples_read = after.tuples_read - mid.tuples_read;
  run.step2.tuples_inserted = after.tuples_inserted - mid.tuples_inserted;
  run.total.tuples_read = after.tuples_read - before.tuples_read;
  run.total.tuples_inserted = after.tuples_inserted - before.tuples_inserted;
  run.step2_iterations = engine.info().iterations;
  run.ms_size = s1.ms_size;
  run.rm_size = s1.rm_size;
  run.rc_size = s1.rc_size;
  run.detected_class = s1.detected;
  if (!st.ok()) return st;

  MCM_ASSIGN_OR_RETURN(std::vector<Tuple> tuples,
                       engine.Query(program.queries[0].goal));
  run.answers = ExtractAnswers(tuples, 0);
  return run;
}

std::vector<std::string> CslSolver::AllMethodNames() {
  std::vector<std::string> out{"counting", "magic_sets"};
  for (const char* v :
       {"basic", "single", "multiple", "recurring", "recurring_smart"}) {
    for (const char* m : {"independent", "integrated"}) {
      out.push_back(std::string("mc/") + v + "/" + m);
    }
  }
  return out;
}

}  // namespace mcm::core
