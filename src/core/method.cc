#include "core/method.h"

#include "util/string_util.h"

namespace mcm::core {

std::string McVariantToString(McVariant v) {
  switch (v) {
    case McVariant::kBasic:
      return "basic";
    case McVariant::kSingle:
      return "single";
    case McVariant::kMultiple:
      return "multiple";
    case McVariant::kRecurring:
      return "recurring";
    case McVariant::kRecurringSmart:
      return "recurring_smart";
  }
  return "?";
}

std::string McModeToString(McMode m) {
  return m == McMode::kIndependent ? "independent" : "integrated";
}

ResolvedCaps RunOptions::EffectiveCaps(uint64_t l_arcs,
                                       uint64_t r_arcs) const {
  ResolvedCaps caps;
  // Auto iteration cap: generous enough for every safe fixpoint on the
  // instance (fixpoint depth is bounded by path length <= arc count), tight
  // enough that divergence is detected fast.
  caps.max_iterations =
      max_iterations != 0 ? max_iterations : 4 * (l_arcs + r_arcs) + 64;
  caps.max_tuples = max_tuples;
  return caps;
}

std::string DetectionModeToString(DetectionMode m) {
  return m == DetectionMode::kAnyDuplicate ? "any_duplicate"
                                           : "differing_index";
}

std::string MethodRun::ToString() const {
  return StringPrintf(
      "%-28s answers=%zu reads=%llu (step1=%llu step2=%llu) iters=%llu "
      "|MS|=%zu |RM|=%zu |RC|=%zu class=%s %.3fms",
      method.c_str(), answers.size(),
      static_cast<unsigned long long>(total.tuples_read),
      static_cast<unsigned long long>(step1.tuples_read),
      static_cast<unsigned long long>(step2.tuples_read),
      static_cast<unsigned long long>(step2_iterations), ms_size, rm_size,
      rc_size, graph::GraphClassToString(detected_class).c_str(),
      seconds * 1e3);
}

}  // namespace mcm::core
