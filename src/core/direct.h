// Direct (engine-free) implementations of the methods.
//
// These are hand-coded fixpoint loops that follow the paper's procedural
// pseudo-code (Sections 2, 4, 5) literally: they read the database
// relations through instrumented index probes — so their cost is measured
// in the same tuple-retrieval unit — and keep the derived sets (CS, MS,
// P_C, P_M) in plain hash containers, which the paper's cost model does
// not charge.
//
// The engine-based path (CslSolver, which evaluates the rewritten Datalog
// programs) and this direct path are two independent implementations of
// the same algorithms; the test suite cross-checks them on random
// databases (tests/core/direct_test.cc).
#pragma once

#include "core/method.h"
#include "core/step1.h"
#include "storage/database.h"
#include "util/status.h"

namespace mcm::core {

/// The counting method (program Q_C run procedurally). Returns
/// Status::Unsafe when the counting-set BFS trips a cap from
/// RunOptions::EffectiveCaps (iteration cap = level cap here), and honors
/// the execution governor (deadline / cancellation / memory budget).
Result<MethodRun> DirectCounting(Database* db, const std::string& l,
                                 const std::string& e, const std::string& r,
                                 Value a, const RunOptions& options = {});

/// The magic set method (program Q_M run procedurally). Always safe.
Result<MethodRun> DirectMagicSets(Database* db, const std::string& l,
                                  const std::string& e, const std::string& r,
                                  Value a, const RunOptions& options = {});

/// A magic counting method: Step 1 via ComputeReducedSets(), Step 2 run
/// procedurally (independent: Section 4; integrated: Section 5).
Result<MethodRun> DirectMagicCounting(Database* db, const std::string& l,
                                      const std::string& e,
                                      const std::string& r, Value a,
                                      McVariant variant, McMode mode,
                                      const RunOptions& options = {});

}  // namespace mcm::core
